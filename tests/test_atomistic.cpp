// Tests for the atomistic substrate: SWCNT geometry, zone-folded bands,
// Landauer transport, NEGF cross-validation, and the calibrated doping
// model (paper Fig. 8 anchors).
#include <gtest/gtest.h>

#include <cmath>

#include "atomistic/bandstructure.hpp"
#include "atomistic/doping.hpp"
#include "atomistic/landauer.hpp"
#include "atomistic/negf.hpp"
#include "atomistic/swcnt_geometry.hpp"
#include "common/units.hpp"

namespace ca = cnti::atomistic;
using cnti::phys::kConductanceQuantum;

namespace {

TEST(Chirality, DiameterOfKnownTubes) {
  // (7,7) armchair: d ~ 0.95 nm (the paper's SWCNT(7,7) is "about 1 nm").
  EXPECT_NEAR(cnti::units::to_nm(ca::Chirality(7, 7).diameter()), 0.949,
              0.01);
  // (10,10): d ~ 1.356 nm.
  EXPECT_NEAR(cnti::units::to_nm(ca::Chirality(10, 10).diameter()), 1.356,
              0.01);
  // (17,0) zigzag: d ~ 1.331 nm.
  EXPECT_NEAR(cnti::units::to_nm(ca::Chirality(17, 0).diameter()), 1.331,
              0.01);
}

TEST(Chirality, MetallicityRule) {
  EXPECT_TRUE(ca::Chirality(7, 7).is_metallic());
  EXPECT_TRUE(ca::Chirality(9, 0).is_metallic());
  EXPECT_TRUE(ca::Chirality(7, 4).is_metallic());
  EXPECT_FALSE(ca::Chirality(10, 0).is_metallic());
  EXPECT_FALSE(ca::Chirality(8, 6).is_metallic());
}

TEST(Chirality, UnitCellCounts) {
  // Armchair (n,n): d_R = 3n, N = 2n, 4n atoms.
  const ca::Chirality a(7, 7);
  EXPECT_EQ(a.d_r(), 21);
  EXPECT_EQ(a.hexagons_per_cell(), 14);
  EXPECT_EQ(a.atoms_per_cell(), 28);
  // Zigzag (n,0): d_R = n, N = 2n, 4n atoms.
  const ca::Chirality z(10, 0);
  EXPECT_EQ(z.d_r(), 10);
  EXPECT_EQ(z.hexagons_per_cell(), 20);
  EXPECT_EQ(z.atoms_per_cell(), 40);
}

TEST(Chirality, TranslationLengths) {
  // Armchair translation length = a (0.246 nm); zigzag = sqrt(3) a.
  EXPECT_NEAR(cnti::units::to_nm(ca::Chirality(7, 7).translation_length()),
              0.246, 1e-3);
  EXPECT_NEAR(cnti::units::to_nm(ca::Chirality(10, 0).translation_length()),
              0.426, 1e-3);
}

TEST(Chirality, RejectsInvalidIndices) {
  EXPECT_THROW(ca::Chirality(0, 0), cnti::PreconditionError);
  EXPECT_THROW(ca::Chirality(5, 6), cnti::PreconditionError);
}

TEST(BandStructure, MetallicTubesAreGapless) {
  for (const auto& ch : {ca::Chirality(7, 7), ca::Chirality(9, 0),
                         ca::Chirality(12, 0), ca::Chirality(10, 10)}) {
    ca::BandStructure bands(ch);
    EXPECT_NEAR(bands.band_gap(), 0.0, 2e-3) << ch.label();
  }
}

TEST(BandStructure, SemiconductingGapScalesInverseDiameter) {
  // E_g ~ 2 gamma0 a_cc / d ~ 0.77 eV nm / d.
  for (const auto& ch : {ca::Chirality(10, 0), ca::Chirality(13, 0),
                         ca::Chirality(17, 0)}) {
    ca::BandStructure bands(ch);
    const double d_nm = cnti::units::to_nm(ch.diameter());
    const double expected = 2.0 * 2.7 * 0.142 / d_nm;
    EXPECT_NEAR(bands.band_gap(), expected, 0.12 * expected) << ch.label();
  }
}

TEST(BandStructure, MetallicTubesHaveTwoModesAtFermi) {
  for (const auto& ch : {ca::Chirality(7, 7), ca::Chirality(9, 0),
                         ca::Chirality(10, 10), ca::Chirality(15, 0)}) {
    ca::BandStructure bands(ch);
    EXPECT_EQ(bands.count_modes(0.02), 2) << ch.label();
  }
}

TEST(BandStructure, SemiconductingTubesHaveNoModesInGap) {
  ca::BandStructure bands(ca::Chirality(10, 0));
  EXPECT_EQ(bands.count_modes(0.0), 0);
  EXPECT_EQ(bands.count_modes(0.2), 0);  // inside the ~0.95 eV gap
}

TEST(BandStructure, ModeStaircaseIncreasesAwayFromFermi) {
  ca::BandStructure bands(ca::Chirality(10, 10));
  const int m0 = bands.count_modes(0.05);
  const int m1 = bands.count_modes(1.2);
  const int m2 = bands.count_modes(2.2);
  EXPECT_EQ(m0, 2);
  EXPECT_GT(m1, m0);
  EXPECT_GT(m2, m1);
}

TEST(BandStructure, ArmchairFirstVanHoveMatchesAnalytic) {
  // First non-crossing subband edge of (n,n) at gamma0 |sin(pi/n)|.
  ca::BandStructure bands(ca::Chirality(10, 10));
  const auto vh = bands.van_hove_energies();
  // Edges 0 (two crossing subbands) then the first finite edge.
  double first_finite = 0.0;
  for (double e : vh) {
    if (e > 0.05) {
      first_finite = e;
      break;
    }
  }
  EXPECT_NEAR(first_finite, 2.7 * std::sin(M_PI / 10.0), 0.02);
}

TEST(Landauer, PaperEq1PristineConductance) {
  // Paper Fig. 8: G_bal of (7,7) is 0.155 mS = 2 G0.
  ca::BandStructure bands(ca::Chirality(7, 7));
  const double g = ca::ballistic_conductance(bands, 0.0, 300.0);
  EXPECT_NEAR(cnti::units::to_mS(g), 0.155, 0.006);
  EXPECT_NEAR(ca::conducting_channels(bands, 0.0, 300.0), 2.0, 0.05);
}

TEST(Landauer, NcCloseToTwoRegardlessOfDiameterAndChirality) {
  // Paper Sec. III.A: "the value of Nc is close to 2 regardless of the
  // diameter and chirality" for metallic tubes.
  for (const auto& ch : {ca::Chirality(5, 5), ca::Chirality(9, 0),
                         ca::Chirality(10, 10), ca::Chirality(18, 0),
                         ca::Chirality(15, 15)}) {
    ca::BandStructure bands(ch);
    const double nc = ca::conducting_channels(bands, 0.0, 300.0);
    EXPECT_NEAR(nc, 2.0, 0.35) << ch.label();
  }
}

TEST(Landauer, SemiconductingConductanceSuppressed) {
  ca::BandStructure bands(ca::Chirality(10, 0));
  const double g = ca::ballistic_conductance(bands, 0.0, 300.0);
  EXPECT_LT(g, 0.01 * kConductanceQuantum);
}

TEST(Landauer, FermiDerivativeNormalized) {
  // integral of -df/dE over all E equals 1.
  double acc = 0.0;
  const double kt = 0.02585;
  const int n = 2001;
  const double lo = -0.5, hi = 0.5;
  const double de = (hi - lo) / (n - 1);
  for (int i = 0; i < n; ++i) {
    acc += ca::fermi_derivative(lo + i * de, 0.0, 300.0) * de;
  }
  EXPECT_NEAR(acc, 1.0, 1e-6);
  EXPECT_NEAR(ca::fermi_derivative(0.0, 0.0, 300.0), 1.0 / (4.0 * kt), 0.01);
}

TEST(Landauer, MetallicChannelAverageIncreasesWithDiameter) {
  const double n1 = ca::average_metallic_channels(1e-9, 300.0);
  const double n10 = ca::average_metallic_channels(10e-9, 300.0);
  const double n30 = ca::average_metallic_channels(30e-9, 300.0);
  EXPECT_NEAR(n1, 2.0, 0.01);  // small tube: exactly the 2 crossing modes
  EXPECT_GT(n10, n1);
  EXPECT_GT(n30, n10);
}

TEST(Landauer, MixedChannelsMatchNaeemiMeindlForm) {
  // Naeemi & Meindl (EDL 2006): statistical average N_c ~ 3.87e-4 d T + 0.2
  // for d T > ~4300 nm K. Check at d = 20, 30 nm, T = 300 K within 15%.
  for (double d_nm : {20.0, 30.0}) {
    const double nc = ca::average_mixed_channels(d_nm * 1e-9, 300.0);
    const double ref = 3.87e-4 * d_nm * 300.0 + 0.2;
    EXPECT_NEAR(nc, ref, 0.15 * ref) << d_nm;
  }
}

// --- NEGF ---

TEST(Negf, TubeHamiltonianIsThreeCoordinated) {
  // Constructor enforces 3-coordination; just exercise a chiral tube where
  // the lattice bookkeeping is hardest.
  ca::TubeHamiltonian h(ca::Chirality(4, 2));
  EXPECT_EQ(h.atoms_per_cell(), ca::Chirality(4, 2).atoms_per_cell());
}

TEST(Negf, SurfaceGreenFunctionMatches1dChainAnalytic) {
  // Single-orbital chain, H00 = 0, hop t = -1: retarded surface GF obeys
  // g = 1 / (z - t^2 g); inside the band Im(g) = -sqrt(4 t^2 - E^2)/(2 t^2).
  ca::MatrixC h00(1, 1), hop(1, 1);
  hop(0, 0) = std::complex<double>(-1.0, 0.0);
  const std::complex<double> z(0.5, 1e-9);
  const ca::MatrixC g = ca::surface_green_function(z, h00, hop);
  const std::complex<double> gs = g(0, 0);
  const std::complex<double> residual = gs * (z - gs) - 1.0;
  EXPECT_LT(std::abs(residual), 1e-6);
  EXPECT_LT(gs.imag(), 0.0);  // retarded
}

TEST(Negf, PristineTransmissionEqualsModeCount) {
  // The key cross-validation: NEGF transmission of a pristine device must
  // equal the zone-folding mode count at every energy (away from edges).
  const ca::Chirality ch(5, 5);
  const ca::TubeHamiltonian h(ch);
  const ca::BandStructure bands(ch);
  ca::NegfSolver solver(h, 2);
  for (double e : {0.0, 0.4, 1.0, 1.6, 2.4}) {
    const double t = solver.transmission(e);
    const int m = bands.count_modes(e);
    EXPECT_NEAR(t, m, 0.02) << "E = " << e;
  }
}

TEST(Negf, ZigzagPristineTransmissionEqualsModeCount) {
  const ca::Chirality ch(9, 0);
  const ca::TubeHamiltonian h(ch);
  const ca::BandStructure bands(ch);
  ca::NegfSolver solver(h, 1);
  for (double e : {0.05, 0.9, 1.5}) {
    EXPECT_NEAR(solver.transmission(e), bands.count_modes(e), 0.02)
        << "E = " << e;
  }
}

TEST(Negf, VacancyReducesTransmission) {
  const ca::Chirality ch(5, 5);
  const ca::TubeHamiltonian h(ch);
  ca::NegfSolver solver(h, 3);
  ca::CellPerturbation p;
  p.onsite_shift_ev.assign(h.atoms_per_cell(), 0.0);
  p.onsite_shift_ev[0] = 1e3;  // vacancy
  solver.set_perturbation(1, p);
  const double t = solver.transmission(0.3);
  EXPECT_LT(t, 1.999);
  EXPECT_GT(t, 0.5);  // a single vacancy does not block a metallic tube
}

TEST(Negf, UniformPotentialShiftsSpectrum) {
  // A rigid device potential U shifts the transmission: T_U(E) ~ T_0(E - U)
  // up to lead-matching corrections; check inside the first plateau.
  const ca::Chirality ch(5, 5);
  const ca::TubeHamiltonian h(ch);
  ca::NegfSolver shifted(h, 2);
  shifted.set_device_potential(-0.3);
  // At E = 0, a pristine (5,5) has 2 modes; with U = -0.3 still 2 modes.
  EXPECT_NEAR(shifted.transmission(0.0), 2.0, 0.05);
}

TEST(Negf, ConductanceMatchesLandauerAtRoomTemperature) {
  const ca::Chirality ch(5, 5);
  const ca::TubeHamiltonian h(ch);
  ca::NegfSolver solver(h, 1);
  const double g = solver.conductance(0.0, 300.0);
  EXPECT_NEAR(g / kConductanceQuantum, 2.0, 0.08);
}

// --- Doping ---

TEST(Doping, PaperDftAnchorsReproduced) {
  // Pristine (7,7): 0.155 mS; iodine-doped: ~0.387 mS with dEf ~ -0.6 eV.
  const ca::BandStructure bands(ca::Chirality(7, 7));
  ca::ChargeTransferDoping doping(ca::DopantSpecies::kIodineInternal, 1.0);
  // Saturated iodine: Fermi shift approaches -0.6 eV (x0.95 stability).
  EXPECT_NEAR(doping.stable_fermi_shift_ev(), -0.56, 0.03);
  const double nc = doping.effective_channels(bands, 300.0);
  const double g_ms = cnti::units::to_mS(nc * kConductanceQuantum);
  EXPECT_NEAR(g_ms, 0.387, 0.045);
}

TEST(Doping, UndopedIsPristine) {
  const ca::BandStructure bands(ca::Chirality(7, 7));
  ca::ChargeTransferDoping doping(ca::DopantSpecies::kIodineInternal, 0.0);
  EXPECT_DOUBLE_EQ(doping.fermi_shift_ev(), 0.0);
  EXPECT_NEAR(doping.effective_channels(bands, 300.0), 2.0, 0.05);
}

TEST(Doping, InternalMoreStableThanExternal) {
  // Paper Sec. II.A: internal doping is more stable than external.
  const auto internal =
      ca::dopant_properties(ca::DopantSpecies::kIodineInternal);
  const auto external =
      ca::dopant_properties(ca::DopantSpecies::kIodineExternal);
  EXPECT_GT(internal.stability_factor, external.stability_factor);
}

TEST(Doping, FermiShiftSaturates) {
  ca::ChargeTransferDoping low(ca::DopantSpecies::kIodineInternal, 0.005);
  ca::ChargeTransferDoping high(ca::DopantSpecies::kIodineInternal, 0.5);
  EXPECT_LT(std::abs(low.fermi_shift_ev()),
            std::abs(high.fermi_shift_ev()));
  EXPECT_LT(std::abs(high.fermi_shift_ev()), 0.6 + 1e-12);
}

TEST(Doping, ChannelsPerShellSimpleSpansPaperRange) {
  // The paper sweeps N_c per shell from 2 (pristine) to ~10 (heavy doping).
  ca::ChargeTransferDoping none(ca::DopantSpecies::kIodineInternal, 0.0);
  EXPECT_NEAR(none.channels_per_shell_simple(), 2.0, 1e-9);
  ca::ChargeTransferDoping sat(ca::DopantSpecies::kIodineInternal, 1.0);
  EXPECT_GT(sat.channels_per_shell_simple(), 4.0);
}

TEST(Landauer, FermiDerivativeIsEvenInEnergy) {
  for (double e : {0.05, 0.1, 0.3}) {
    EXPECT_NEAR(ca::fermi_derivative(e, 0.0, 300.0),
                ca::fermi_derivative(-e, 0.0, 300.0), 1e-12);
  }
}

TEST(Landauer, SemiconductingConductanceThermallyActivated) {
  // Carriers must be excited across the ~0.95 eV gap of (10,0), so the
  // conductance grows steeply with temperature.
  ca::BandStructure bands(ca::Chirality(10, 0));
  const double g300 = ca::ballistic_conductance(bands, 0.0, 300.0);
  const double g500 = ca::ballistic_conductance(bands, 0.0, 500.0);
  EXPECT_GT(g500, g300);
}

TEST(Doping, FermiShiftMonotoneInConcentration) {
  double prev = 0.0;
  for (double c : {0.01, 0.05, 0.2, 0.6, 1.0}) {
    ca::ChargeTransferDoping d(ca::DopantSpecies::kIodineInternal, c);
    const double shift = std::abs(d.fermi_shift_ev());
    EXPECT_GT(shift, prev) << "c = " << c;
    prev = shift;
  }
}

TEST(Doping, DefectMfpEstimateIsFiniteAndPositive) {
  const auto res = ca::estimate_defect_mfp(ca::Chirality(5, 5),
                                           /*defect_probability=*/0.02,
                                           /*energy_ev=*/0.3, /*seed=*/99,
                                           /*max_cells=*/12, /*samples=*/2);
  EXPECT_NEAR(res.ballistic_modes, 2.0, 0.05);
  EXPECT_GT(res.mfp_m, 0.0);
  EXPECT_LT(res.mfp_m, 1e-6);
}

}  // namespace
