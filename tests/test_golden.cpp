// Golden regression pins for the stochastic physics hot paths that the
// parallel execution subsystem reworks (run_resistance_mc, WaferMap).
// Values were captured from the serial, seed-fixed implementation at the
// PR-2 baseline. Tolerances are set from the statistical error of each
// estimator (20000 MC samples / 169 dies), so a reseeding of the sample
// streams passes but a physics change (dropped contact term, wrong MFP
// combination, broken channel lottery) fails.
#include <gtest/gtest.h>

#include "numerics/rng.hpp"
#include "process/variability.hpp"
#include "process/wafer.hpp"

namespace cp = cnti::process;

namespace {

cp::VariabilityResult run_mc(double doping_conc, double temperature_c) {
  cp::VariabilityConfig cfg;
  cfg.samples = 20000;
  cfg.dopant_concentration = doping_conc;
  cfg.recipe.temperature_c = temperature_c;
  return cp::run_resistance_mc(cfg);
}

TEST(GoldenVariability, PristineDefaultRecipe) {
  // Baseline capture: median=67.765, cv=0.831, p95=175.2, tail=0.0303,
  // open=0.1735.
  const auto r = run_mc(0.0, 450.0);
  EXPECT_NEAR(r.resistance_kohm.median, 67.77, 0.025 * 67.77);
  EXPECT_NEAR(r.resistance_kohm.cv(), 0.831, 0.08);
  EXPECT_NEAR(r.resistance_kohm.p95, 175.2, 0.06 * 175.2);
  EXPECT_NEAR(r.tail_fraction, 0.0303, 0.010);
  EXPECT_NEAR(r.open_fraction, 0.1735, 0.012);
}

TEST(GoldenVariability, SaturatedIodineDoping) {
  // Baseline capture: median=53.873, cv=0.514, tail=0.0114, open=0.
  const auto r = run_mc(1.0, 450.0);
  EXPECT_NEAR(r.resistance_kohm.median, 53.87, 0.025 * 53.87);
  EXPECT_NEAR(r.resistance_kohm.cv(), 0.514, 0.06);
  EXPECT_NEAR(r.tail_fraction, 0.0114, 0.008);
  EXPECT_EQ(r.open_fraction, 0.0);  // every doped shell conducts
}

TEST(GoldenVariability, HotGrowthPristine) {
  // Baseline capture: median=59.359, cv=0.638, open=0.1730. Hot growth
  // heals defects, so the median sits below the 450 C pristine value while
  // the chirality-lottery open fraction is unchanged.
  const auto r = run_mc(0.0, 620.0);
  EXPECT_NEAR(r.resistance_kohm.median, 59.36, 0.025 * 59.36);
  EXPECT_NEAR(r.resistance_kohm.cv(), 0.638, 0.08);
  EXPECT_NEAR(r.open_fraction, 0.1730, 0.012);
}

cp::WaferMap make_wafer(double noise_c) {
  cnti::numerics::Rng rng(2018);
  cp::WaferSpec spec;
  spec.temperature_noise_c = noise_c;
  cp::GrowthRecipe nominal;
  nominal.catalyst = cp::Catalyst::kCo;
  nominal.temperature_c = 400.0;
  return cp::WaferMap(spec, nominal, rng);
}

TEST(GoldenWafer, NoiseFreeMapIsFullyDeterministic) {
  // Diameter depends only on catalyst thickness and the deterministic
  // radial skew, so with zero temperature noise the whole map is pinned
  // exactly: 169 dies, uniformity 0.027340578, default yield 1.
  const auto w = make_wafer(0.0);
  EXPECT_EQ(w.dies().size(), 169u);
  EXPECT_NEAR(w.diameter_uniformity(), 0.027340578, 1e-7);
  EXPECT_DOUBLE_EQ(w.yield(), 1.0);
}

TEST(GoldenWafer, SeedFixedNoisyMapStatistics) {
  // Baseline capture (seed 2018): growth-rate mean=0.1391, cv=0.177,
  // yield at a 0.10 um/min floor = 0.9704.
  const auto w = make_wafer(2.0);
  EXPECT_EQ(w.dies().size(), 169u);
  // Diameter uniformity is noise-independent, still exact.
  EXPECT_NEAR(w.diameter_uniformity(), 0.027340578, 1e-7);
  const auto rate = w.summarize([](const cp::GrowthQuality& q) {
    return q.growth_rate_um_per_min;
  });
  EXPECT_NEAR(rate.mean, 0.1391, 0.010);
  EXPECT_NEAR(rate.cv(), 0.177, 0.05);
  EXPECT_NEAR(w.yield(0.10), 0.9704, 0.045);
}

}  // namespace
