// Golden regression pins, two families:
//  - Stochastic physics hot paths that the parallel execution subsystem
//    reworks (run_resistance_mc, WaferMap), captured from the serial,
//    seed-fixed implementation at the PR-2 baseline. Tolerances are set
//    from the statistical error of each estimator (20000 MC samples / 169
//    dies), so a reseeding of the sample streams passes but a physics
//    change (dropped contact term, wrong MFP combination, broken channel
//    lottery) fails.
//  - Deterministic MNA transients (crosstalk victim noise, the Fig. 11
//    driver->line->receiver chain delay, an RC ladder step response),
//    captured from the dense engine at the PR-3 baseline — verified
//    bit-identical to the pre-sparse-rework engine — and pinned through
//    BOTH backends so the sparse path cannot silently shift physics.
//    Tolerances (1e-6 relative) sit far above cross-compiler FP noise and
//    far below any physical shift.
#include <gtest/gtest.h>

#include <string>

#include "circuit/builders.hpp"
#include "circuit/crosstalk.hpp"
#include "circuit/mna.hpp"
#include "core/mwcnt_line.hpp"
#include "numerics/interp.hpp"
#include "numerics/rng.hpp"
#include "process/variability.hpp"
#include "process/wafer.hpp"

namespace cp = cnti::process;
namespace cir = cnti::circuit;

namespace {

cp::VariabilityResult run_mc(double doping_conc, double temperature_c) {
  cp::VariabilityConfig cfg;
  cfg.samples = 20000;
  cfg.dopant_concentration = doping_conc;
  cfg.recipe.temperature_c = temperature_c;
  return cp::run_resistance_mc(cfg);
}

TEST(GoldenVariability, PristineDefaultRecipe) {
  // Baseline capture: median=67.765, cv=0.831, p95=175.2, tail=0.0303,
  // open=0.1735.
  const auto r = run_mc(0.0, 450.0);
  EXPECT_NEAR(r.resistance_kohm.median, 67.77, 0.025 * 67.77);
  EXPECT_NEAR(r.resistance_kohm.cv(), 0.831, 0.08);
  EXPECT_NEAR(r.resistance_kohm.p95, 175.2, 0.06 * 175.2);
  EXPECT_NEAR(r.tail_fraction, 0.0303, 0.010);
  EXPECT_NEAR(r.open_fraction, 0.1735, 0.012);
}

TEST(GoldenVariability, SaturatedIodineDoping) {
  // Baseline capture: median=53.873, cv=0.514, tail=0.0114, open=0.
  const auto r = run_mc(1.0, 450.0);
  EXPECT_NEAR(r.resistance_kohm.median, 53.87, 0.025 * 53.87);
  EXPECT_NEAR(r.resistance_kohm.cv(), 0.514, 0.06);
  EXPECT_NEAR(r.tail_fraction, 0.0114, 0.008);
  EXPECT_EQ(r.open_fraction, 0.0);  // every doped shell conducts
}

TEST(GoldenVariability, HotGrowthPristine) {
  // Baseline capture: median=59.359, cv=0.638, open=0.1730. Hot growth
  // heals defects, so the median sits below the 450 C pristine value while
  // the chirality-lottery open fraction is unchanged.
  const auto r = run_mc(0.0, 620.0);
  EXPECT_NEAR(r.resistance_kohm.median, 59.36, 0.025 * 59.36);
  EXPECT_NEAR(r.resistance_kohm.cv(), 0.638, 0.08);
  EXPECT_NEAR(r.open_fraction, 0.1730, 0.012);
}

cp::WaferMap make_wafer(double noise_c) {
  cnti::numerics::Rng rng(2018);
  cp::WaferSpec spec;
  spec.temperature_noise_c = noise_c;
  cp::GrowthRecipe nominal;
  nominal.catalyst = cp::Catalyst::kCo;
  nominal.temperature_c = 400.0;
  return cp::WaferMap(spec, nominal, rng);
}

TEST(GoldenWafer, NoiseFreeMapIsFullyDeterministic) {
  // Diameter depends only on catalyst thickness and the deterministic
  // radial skew, so with zero temperature noise the whole map is pinned
  // exactly: 169 dies, uniformity 0.027340578, default yield 1.
  const auto w = make_wafer(0.0);
  EXPECT_EQ(w.dies().size(), 169u);
  EXPECT_NEAR(w.diameter_uniformity(), 0.027340578, 1e-7);
  EXPECT_DOUBLE_EQ(w.yield(), 1.0);
}

TEST(GoldenWafer, SeedFixedNoisyMapStatistics) {
  // Baseline capture (seed 2018): growth-rate mean=0.1391, cv=0.177,
  // yield at a 0.10 um/min floor = 0.9704.
  const auto w = make_wafer(2.0);
  EXPECT_EQ(w.dies().size(), 169u);
  // Diameter uniformity is noise-independent, still exact.
  EXPECT_NEAR(w.diameter_uniformity(), 0.027340578, 1e-7);
  const auto rate = w.summarize([](const cp::GrowthQuality& q) {
    return q.growth_rate_um_per_min;
  });
  EXPECT_NEAR(rate.mean, 0.1391, 0.010);
  EXPECT_NEAR(rate.cv(), 0.177, 0.05);
  EXPECT_NEAR(w.yield(0.10), 0.9704, 0.045);
}

// ---------------------------------------------------------------------------
// Deterministic MNA waveform pins (both linear backends).
// ---------------------------------------------------------------------------

class GoldenMnaWaveforms : public ::testing::TestWithParam<cir::SolverKind> {
 protected:
  cir::MnaOptions mna() const {
    cir::MnaOptions o;
    o.solver = GetParam();
    return o;
  }
};

TEST_P(GoldenMnaWaveforms, CrosstalkVictimNoisePeak) {
  // Baseline capture (dense, PR-3): peak_noise_v=1.368417963456e-01 at
  // t=1.733023193377e-10, aggressor delay 1.554552285844e-10.
  cir::CrosstalkConfig cfg;
  cfg.victim = cnti::core::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  cfg.aggressor = cfg.victim;
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 50e-6;
  cfg.segments = 12;
  cfg.mna = mna();
  const cir::CrosstalkResult xt = cir::analyze_crosstalk(cfg, 1200);
  EXPECT_NEAR(xt.peak_noise_v, 1.368417963456e-01, 1e-6 * 1.37e-1);
  EXPECT_NEAR(xt.peak_time_s, 1.733023193377e-10, 1e-6 * 1.73e-10);
  EXPECT_NEAR(xt.aggressor_delay_s, 1.554552285844e-10, 1e-6 * 1.55e-10);
}

TEST_P(GoldenMnaWaveforms, Fig11ChainDelay) {
  // Baseline capture (dense, PR-3): delay 4.620541880439e-10 s for a
  // 200 um doped line behind the 8x driver chain.
  cir::Fig11Options opt;
  opt.line = cnti::core::make_paper_mwcnt(10, 4.0, 100e3).rlc();
  opt.length_m = 200e-6;
  opt.segments = 12;
  opt.mna = mna();
  EXPECT_NEAR(cir::measure_fig11_delay(opt, 2000), 4.620541880439e-10,
              1e-6 * 4.62e-10);
}

TEST_P(GoldenMnaWaveforms, RcLadderStepResponse) {
  // Baseline capture (dense, PR-3): far-end t50=1.559068319698e-10;
  // v(200 ps)=6.266693699666e-01, v(400 ps)=9.008560833759e-01,
  // v(1 ns)=9.981431391287e-01.
  cir::Circuit ckt;
  cir::PulseWave pulse;
  pulse.v1 = 0.0;
  pulse.v2 = 1.0;
  pulse.delay_s = 10e-12;
  pulse.rise_s = 10e-12;
  pulse.fall_s = 10e-12;
  pulse.width_s = 1.0;
  pulse.period_s = 2.0;
  const auto in = ckt.node("in");
  ckt.add_vsource("vin", in, 0, pulse);
  cir::NodeId prev = in;
  cir::NodeId far = 0;
  for (int s = 0; s < 30; ++s) {
    const std::string is = std::to_string(s);
    const auto n = ckt.node("n" + is);
    ckt.add_resistor("r" + is, prev, n, 200.0);
    ckt.add_capacitor("c" + is, n, 0, 2e-15);
    prev = n;
    far = n;
  }
  cir::TransientOptions topt;
  topt.t_stop_s = 1.0e-9;
  topt.dt_s = 0.5e-12;
  topt.mna = mna();
  const cir::TransientResult res = cir::simulate_transient(ckt, topt);
  const auto& v = res.voltage(far);
  const double t50 = cnti::numerics::first_crossing_time(
      res.time(), v, 0.5, /*rising=*/true);
  EXPECT_NEAR(t50, 1.559068319698e-10, 1e-6 * 1.56e-10);
  EXPECT_NEAR(v[400], 6.266693699666e-01, 1e-6);
  EXPECT_NEAR(v[800], 9.008560833759e-01, 1e-6);
  EXPECT_NEAR(v.back(), 9.981431391287e-01, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, GoldenMnaWaveforms,
                         ::testing::Values(cir::SolverKind::kDense,
                                           cir::SolverKind::kSparse),
                         [](const auto& param) {
                           return param.param == cir::SolverKind::kDense
                                      ? "Dense"
                                      : "Sparse";
                         });

}  // namespace
