// Tests for the PRIMA model-order-reduction subsystem: state-space
// extraction contracts, exactness on systems the reduced order can
// represent fully, differential cross-validation against ac_analysis
// (frequency domain) and the sparse-MNA transient engine (time domain),
// stability/passivity property tests (reduced poles in the left
// half-plane), port-termination folding, and deterministic parallel
// scenario sweeps over a shared reduced model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "circuit/ac.hpp"
#include "circuit/builders.hpp"
#include "circuit/crosstalk.hpp"
#include "circuit/mna.hpp"
#include "core/mwcnt_line.hpp"
#include "core/sweep_engine.hpp"
#include "numerics/interp.hpp"
#include "numerics/solvers.hpp"
#include "numerics/sparse.hpp"
#include "numerics/sparse_lu.hpp"
#include "rom/interconnect_rom.hpp"
#include "rom/parametrized_rom.hpp"
#include "rom/prima.hpp"
#include "rom/rom_preconditioner.hpp"

namespace cir = cnti::circuit;
namespace cc = cnti::core;
namespace rom = cnti::rom;

namespace {

// --- Shared fixtures -----------------------------------------------------

/// vsource -> R -> C lowpass; full MNA order 3 (2 nodes + 1 branch).
cir::Circuit rc_lowpass(cir::NodeId* out) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  *out = ckt.node("out");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  ckt.add_resistor("r1", in, *out, 1e3);
  ckt.add_capacitor("c1", *out, 0, 1e-12);
  return ckt;
}

/// Driver + distributed MWCNT line + load, the golden RC line of the AC
/// suite.
cir::Circuit mwcnt_line_circuit(double nc, cir::NodeId* out) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  *out = ckt.node("out");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  cir::add_distributed_line(ckt, "ln", in, *out,
                            cc::make_paper_mwcnt(10, nc, 100e3).rlc(),
                            200e-6, 12);
  ckt.add_capacitor("cl", *out, 0, 1e-15);
  return ckt;
}

rom::ReducedModel reduce_observing(const cir::Circuit& ckt, cir::NodeId out,
                                   int order) {
  rom::StateSpaceOptions opt;
  opt.observe = {out};
  return rom::prima_reduce(rom::extract_state_space(ckt, opt),
                           {.order = order});
}

double max_db_error(const cir::AcResult& a, const cir::AcResult& b,
                    double f_max_hz) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.frequency_hz.size(); ++i) {
    if (a.frequency_hz[i] > f_max_hz) break;
    worst = std::max(worst, std::abs(a.magnitude_db(i) - b.magnitude_db(i)));
  }
  return worst;
}

cir::BusConfig paper_bus(int lines, int segments) {
  cir::BusConfig cfg;
  cfg.line = cc::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 100e-6;
  cfg.lines = lines;
  cfg.segments = segments;
  return cfg;
}

// --- State-space extraction contracts ------------------------------------

TEST(StateSpace, RejectsNonlinearAndDegenerateCircuits) {
  cir::Circuit mos;
  const auto d = mos.node("d");
  mos.add_vsource("v", d, 0, cir::DcWave{1.0});
  mos.add_mosfet("m1", d, mos.node("g"), 0, cir::MosfetParams{});
  EXPECT_THROW(rom::extract_state_space(mos), cnti::PreconditionError);

  cir::Circuit no_inputs;
  no_inputs.add_resistor("r", no_inputs.node("a"), 0, 1e3);
  EXPECT_THROW(rom::extract_state_space(no_inputs),
               cnti::PreconditionError);

  cir::NodeId out = 0;
  const auto ckt = rc_lowpass(&out);
  rom::StateSpaceOptions bad_port;
  bad_port.ports = {{"p", 99}};
  EXPECT_THROW(rom::extract_state_space(ckt, bad_port),
               cnti::PreconditionError);
}

TEST(StateSpace, ShapesNamesAndIndexLookup) {
  cir::NodeId out = 0;
  const auto ckt = rc_lowpass(&out);
  rom::StateSpaceOptions opt;
  opt.observe = {out};
  opt.ports = {{"load_port", out}};
  const auto ss = rom::extract_state_space(ckt, opt);
  EXPECT_EQ(ss.nodes, 2);
  EXPECT_EQ(ss.size, 3);  // 2 nodes + 1 vsource branch
  ASSERT_EQ(ss.inputs(), 2);   // vin + port
  ASSERT_EQ(ss.outputs(), 2);  // port + observed node
  EXPECT_EQ(ss.input_index("vin"), 0);
  EXPECT_EQ(ss.input_index("load_port"), 1);
  EXPECT_EQ(ss.output_index("load_port"), 0);
  EXPECT_EQ(ss.output_index("out"), 1);
  EXPECT_THROW(ss.input_index("nope"), cnti::PreconditionError);
  EXPECT_EQ(ss.g.rows(), 3u);
  EXPECT_EQ(ss.c.rows(), 3u);
  EXPECT_EQ(ss.b.rows(), 3u);
  EXPECT_EQ(ss.l.cols(), 2u);
}

TEST(StateSpace, PassiveStructure) {
  // G + G^T PSD and C = C^T PSD are what PRIMA's stability guarantee
  // rests on; probe both quadratic forms with a deterministic pseudo-
  // random vector sweep.
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  ckt.add_resistor("r1", in, mid, 50.0);
  ckt.add_inductor("l1", mid, out, 1e-9);
  ckt.add_capacitor("c1", out, 0, 2e-12);
  ckt.add_capacitor("c2", mid, out, 1e-12);
  const auto ss = rom::extract_state_space(ckt);
  const std::size_t n = static_cast<std::size_t>(ss.size);
  unsigned state = 42u;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(n);
    for (auto& v : x) {
      state = state * 1664525u + 1013904223u;
      v = static_cast<double>(state >> 8) / (1u << 24) - 0.5;
    }
    const auto gx = ss.g * x;
    const auto cx = ss.c * x;
    double xgx = 0.0, xcx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      xgx += x[i] * gx[i];
      xcx += x[i] * cx[i];
    }
    EXPECT_GE(xgx, -1e-15) << "G + G^T not PSD";
    EXPECT_GE(xcx, -1e-24) << "C not PSD";
    // C symmetry: compare against the transposed quadratic pairing on a
    // second vector.
    std::vector<double> y(n);
    for (auto& v : y) {
      state = state * 1664525u + 1013904223u;
      v = static_cast<double>(state >> 8) / (1u << 24) - 0.5;
    }
    const auto cy = ss.c * y;
    double xcy = 0.0, ycx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      xcy += x[i] * cy[i];
      ycx += y[i] * cx[i];
    }
    EXPECT_NEAR(xcy, ycx, 1e-24);
  }
}

// --- Exactness at full order ---------------------------------------------

TEST(Prima, RcLowPassIsExactAtMatchingOrder) {
  cir::NodeId out = 0;
  const auto ckt = rc_lowpass(&out);
  const auto rm = reduce_observing(ckt, out, 3);
  EXPECT_LE(rm.order(), 3);
  EXPECT_EQ(rm.full_order(), 3);

  const auto freqs = cir::log_frequency_grid(1e6, 1e11, 10);
  const auto ref = cir::ac_analysis(ckt, "vin", out, freqs);
  const auto got = rm.transfer_sweep(freqs, 0, 0);
  EXPECT_LT(max_db_error(ref, got, 1e11), 1e-9);

  // One pole at exactly -1/RC; Elmore delay RC.
  const auto poles = rm.poles();
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), -1.0e9, 1e-3 * 1e9);
  EXPECT_NEAR(poles[0].imag(), 0.0, 1.0);
  EXPECT_NEAR(rm.elmore_delay(0, 0), 1e-9, 1e-15);

  // Moments: H(s) = 1/(1 + sRC) => m0 = 1, m1 = -RC. The engine-matching
  // g_min floor shifts both by a ~2 R g_min = 2e-9 relative part.
  const auto m = rm.moments(2);
  EXPECT_NEAR(m[0](0, 0), 1.0, 1e-8);
  EXPECT_NEAR(m[1](0, 0), -1e-9, 1e-17);
}

TEST(Prima, ElmoreDelayMatchesHandComputedLadderSum) {
  // 3-stage RC ladder behind a driver: Elmore = sum_i R_upstream,i * C_i.
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  const double r[3] = {100.0, 200.0, 400.0};
  const double c[3] = {1e-15, 2e-15, 0.5e-15};
  cir::NodeId prev = in;
  for (int s = 0; s < 3; ++s) {
    const std::string is = std::to_string(s);
    const auto n = ckt.node("n" + is);
    ckt.add_resistor("r" + is, prev, n, r[s]);
    ckt.add_capacitor("c" + is, n, 0, c[s]);
    prev = n;
  }
  double expected = 0.0;
  double r_up = 0.0;
  for (int s = 0; s < 3; ++s) {
    r_up += r[s];
    expected += r_up * c[s];
  }  // Elmore sum: R_upstream * C at every tap.
  const auto rm = reduce_observing(ckt, prev, 4);
  EXPECT_NEAR(rm.elmore_delay(0, 0), expected, 1e-6 * expected);
}

TEST(Prima, KrylovDeflationStopsAtFullOrder) {
  cir::NodeId out = 0;
  const auto ckt = rc_lowpass(&out);
  // Asking for order 16 on a full order 3 system must deflate, not pad.
  const auto rm = reduce_observing(ckt, out, 16);
  EXPECT_LE(rm.order(), 3);
  const auto freqs = cir::log_frequency_grid(1e6, 1e10, 5);
  const auto ref = cir::ac_analysis(ckt, "vin", out, freqs);
  EXPECT_LT(max_db_error(ref, rm.transfer_sweep(freqs, 0, 0), 1e10), 1e-9);
}

// --- Frequency-domain cross-validation (golden RC / RLC lines) -----------

TEST(Prima, MwcntRcLineMatchesAcAnalysisInBand) {
  // ROM vs ac_analysis on the golden 200 um doped MWCNT line: <= 0.1 dB
  // up to well past the 3 dB bandwidth (the matched-moment band).
  for (const double nc : {2.0, 10.0}) {
    cir::NodeId out = 0;
    const auto ckt = mwcnt_line_circuit(nc, &out);
    const auto rm = reduce_observing(ckt, out, 10);
    const auto freqs = cir::log_frequency_grid(1e6, 1e12, 20);
    const auto ref = cir::ac_analysis(ckt, "vin", out, freqs);
    const auto got = rm.transfer_sweep(freqs, 0, 0);
    const double f3db = cir::bandwidth_3db(ref);
    ASSERT_GT(f3db, 0.0);
    EXPECT_LT(max_db_error(ref, got, 3.0 * f3db), 0.1)
        << "Nc = " << nc << ", f3db = " << f3db;
    // The interoperable AcResult lets bandwidth_3db run on ROM output.
    EXPECT_NEAR(cir::bandwidth_3db(got), f3db, 0.02 * f3db);
  }
}

TEST(Prima, RlcLadderWithKineticInductanceMatchesAcAnalysis) {
  // Series-L ladder (kinetic inductance visible at high frequency): the
  // descriptor form carries the inductor branches, so the ROM must track
  // the RLC response, not just the RC envelope.
  const auto line = cc::make_paper_mwcnt(10, 2, 0.0).rlc();
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  const int segs = 8;
  const auto parts = cc::discretize_line(line, 10e-6, segs);
  cir::NodeId prev = in;
  for (int s = 0; s < segs; ++s) {
    const std::string is = std::to_string(s);
    const auto mid = ckt.node("m" + is);
    const auto nxt = (s == segs - 1) ? out : ckt.node("n" + is);
    ckt.add_resistor("r" + is, prev, mid,
                     parts[static_cast<std::size_t>(s)].resistance_ohm);
    ckt.add_inductor("l" + is, mid, nxt,
                     line.inductance_per_m * 10e-6 / segs);
    ckt.add_capacitor("c" + is, nxt, 0,
                      parts[static_cast<std::size_t>(s)].capacitance_f);
    prev = nxt;
  }
  const auto rm = reduce_observing(ckt, out, 20);
  const auto freqs = cir::log_frequency_grid(1e8, 2e11, 20);
  const auto ref = cir::ac_analysis(ckt, "vin", out, freqs);
  const auto got = rm.transfer_sweep(freqs, 0, 0);
  EXPECT_LT(max_db_error(ref, got, 2e11), 0.1);
}

// --- Stability property tests --------------------------------------------

TEST(Prima, ReducedPolesStayInLeftHalfPlane) {
  // Congruence projection of a passive network: every finite pole must
  // satisfy Re(p) <= 0 at any order budget, including aggressive
  // truncation.
  std::vector<std::pair<std::string, cir::Circuit>> circuits;
  {
    cir::NodeId out = 0;
    circuits.emplace_back("mwcnt_rc", mwcnt_line_circuit(4.0, &out));
  }
  {
    cir::Circuit rlc;
    const auto in = rlc.node("in");
    const auto mid = rlc.node("mid");
    const auto out = rlc.node("out");
    rlc.add_vsource("vin", in, 0, cir::DcWave{0.0});
    rlc.add_resistor("r1", in, mid, 10.0);
    rlc.add_inductor("l1", mid, out, 1e-9);
    rlc.add_capacitor("c1", out, 0, 1e-12);
    circuits.emplace_back("series_rlc", std::move(rlc));
  }
  for (auto& [name, ckt] : circuits) {
    for (const int order : {2, 4, 8, 16}) {
      const auto rm = reduce_observing(ckt, ckt.node("out"), order);
      EXPECT_TRUE(rm.stable()) << name << " at order " << order;
      for (const auto& p : rm.poles()) {
        EXPECT_LE(p.real(), 1e-9 * std::abs(p))
            << name << " order " << order << " pole " << p.real();
      }
    }
  }
}

TEST(Prima, TerminatedBusRomStaysStable) {
  // Termination folding is a congruence update of a passive network, so
  // stability must survive any nonnegative driver/load attachment.
  const rom::BusRom bus(paper_bus(4, 12));
  for (const double r : {500.0, 5e3, 50e3}) {
    for (const double cl : {0.0, 0.2e-15, 5e-15}) {
      std::vector<rom::PortTermination> loads;
      for (int l = 0; l < 4; ++l) loads.push_back({l, l, 1.0 / r, 0.0});
      for (int l = 0; l < 4; ++l) loads.push_back({4 + l, 4 + l, 0.0, cl});
      EXPECT_TRUE(bus.model().terminated(loads).stable())
          << "r = " << r << ", cl = " << cl;
    }
  }
}

// --- Port termination folding --------------------------------------------

TEST(Prima, PortTerminationReproducesInCircuitLoad) {
  // Reduce a bare R line with a port at its far end, fold a load C into
  // the reduced model, and compare against the circuit with the same C
  // netlisted before extraction.
  cir::Circuit bare;
  const auto in = bare.node("in");
  const auto out = bare.node("out");
  bare.add_vsource("vin", in, 0, cir::DcWave{0.0});
  bare.add_resistor("r1", in, out, 1e3);

  cir::Circuit loaded = bare;
  loaded.add_capacitor("cl", out, 0, 1e-12);

  rom::StateSpaceOptions opt;
  opt.ports = {{"far", out}};
  const auto rm_bare = rom::prima_reduce(
      rom::extract_state_space(bare, opt), {.order = 4});
  const auto rm_terminated = rm_bare.terminated(
      {{rm_bare.input_index("far"), rm_bare.output_index("far"), 0.0,
        1e-12}});

  const auto freqs = cir::log_frequency_grid(1e6, 1e10, 10);
  const auto ref = cir::ac_analysis(loaded, "vin", out, freqs);
  // Input 0 is vin, output 0 the port voltage.
  const auto got = rm_terminated.transfer_sweep(freqs, 0, 0);
  EXPECT_LT(max_db_error(ref, got, 1e10), 1e-6);
}

// --- Time-domain cross-validation against the MNA engine -----------------

TEST(Prima, StepResponseMatchesTransientEngineOnRcLadder) {
  // 40-stage RC ladder behind a pulsed driver: ROM transient vs the MNA
  // engine on the identical time grid.
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  cir::PulseWave pulse = cir::bus_edge_wave(1.0, 20e-12);
  ckt.add_vsource("vin", in, 0, pulse);
  cir::NodeId prev = in;
  const int stages = 40;
  for (int s = 0; s < stages; ++s) {
    const std::string is = std::to_string(s);
    const auto n = ckt.node("n" + is);
    ckt.add_resistor("r" + is, prev, n, 100.0);
    ckt.add_capacitor("c" + is, n, 0, 2e-15);
    prev = n;
  }
  const cir::NodeId out = prev;

  cir::TransientOptions topt;
  topt.t_stop_s = 2e-9;
  topt.dt_s = 2e-12;
  const auto full = cir::simulate_transient(ckt, topt);

  const auto rm = reduce_observing(ckt, out, 12);
  const auto red =
      rm.simulate({pulse}, topt.t_stop_s, topt.dt_s);

  ASSERT_EQ(red.time.size(), full.time().size());
  const auto& vf = full.voltage(out);
  const auto& vr = red.outputs[0];
  double worst = 0.0;
  for (std::size_t i = 0; i < red.time.size(); ++i) {
    worst = std::max(worst, std::abs(vf[i] - vr[i]));
  }
  EXPECT_LT(worst, 1e-3);  // 0.1% of the 1 V swing, everywhere

  const double d_full = cnti::numerics::first_crossing_time(
      full.time(), vf, 0.5, /*rising=*/true);
  const double d_rom = cnti::numerics::first_crossing_time(
      red.time, vr, 0.5, /*rising=*/true);
  EXPECT_NEAR(d_rom, d_full, 0.002 * d_full);
}

class BusRomVsFullMna : public ::testing::TestWithParam<int> {};

TEST_P(BusRomVsFullMna, NoiseAndDelayWithinOnePercent) {
  // Acceptance-grade differential: ROM evaluation vs the full sparse-MNA
  // transient on nominal and off-nominal driver/load scenarios.
  const int lines = GetParam();
  const int segments = lines >= 16 ? 128 : 48;
  cir::BusConfig cfg = paper_bus(lines, segments);
  const rom::BusRom bus(cfg);
  EXPECT_LT(bus.order(), bus.full_order() / 4);

  struct Scenario {
    double driver_ohm;
    double load_f;
  };
  for (const auto& sc : {Scenario{5e3, 0.2e-15}, Scenario{1.5e3, 1e-15}}) {
    cir::BusConfig full_cfg = cfg;
    full_cfg.driver_ohm = sc.driver_ohm;
    full_cfg.receiver_load_f = sc.load_f;
    const auto full = cir::analyze_bus_crosstalk(full_cfg, 600);

    rom::BusScenario rsc;
    rsc.driver_ohm = sc.driver_ohm;
    rsc.receiver_load_f = sc.load_f;
    const auto red = bus.evaluate(rsc, 600);

    EXPECT_EQ(red.worst_victim, full.worst_victim);
    EXPECT_NEAR(red.peak_noise_v, full.peak_noise_v,
                0.01 * std::abs(full.peak_noise_v));
    EXPECT_NEAR(red.aggressor_delay_s, full.aggressor_delay_s,
                0.01 * full.aggressor_delay_s);
  }
}

INSTANTIATE_TEST_SUITE_P(BusSizes, BusRomVsFullMna,
                         ::testing::Values(4, 8, 16),
                         [](const ::testing::TestParamInfo<int>& param) {
                           return "lines" + std::to_string(param.param);
                         });

// --- Contracts and error paths -------------------------------------------

TEST(ReducedModel, EvaluationContracts) {
  cir::NodeId out = 0;
  const auto ckt = rc_lowpass(&out);
  const auto rm = reduce_observing(ckt, out, 3);
  EXPECT_THROW(rm.transfer(1e9, 5, 0), cnti::PreconditionError);
  EXPECT_THROW(rm.transfer(1e9, 0, 5), cnti::PreconditionError);
  EXPECT_THROW(rm.transfer(-1.0, 0, 0), cnti::PreconditionError);
  EXPECT_THROW(rm.simulate({}, 1e-9, 1e-12), cnti::PreconditionError);
  EXPECT_THROW(rm.simulate({cir::DcWave{0.0}}, 1e-9, 2e-9),
               cnti::PreconditionError);
  EXPECT_THROW(rm.moments(0), cnti::PreconditionError);
  EXPECT_THROW(rm.terminated({{9, 0, 1e-3, 0.0}}),
               cnti::PreconditionError);
  EXPECT_THROW(rom::prima_reduce(rom::extract_state_space(ckt), {.order = 0}),
               cnti::PreconditionError);
}

TEST(ReducedModel, StepResponseSettlesToDcGain) {
  cir::NodeId out = 0;
  const auto ckt = rc_lowpass(&out);
  const auto rm = reduce_observing(ckt, out, 3);
  const auto tr = rm.step_response(0, 20e-9, 4e-12);
  EXPECT_NEAR(tr.outputs[0].back(), 1.0, 1e-6);
  EXPECT_NEAR(tr.outputs[0].front(), 0.0, 1e-12);
  // 50% crossing of the unit step at RC ln 2 (tolerance covers the
  // trapezoidal discretization and linear crossing interpolation).
  const double d = cnti::numerics::first_crossing_time(
      tr.time, tr.outputs[0], 0.5, /*rising=*/true);
  EXPECT_NEAR(d, std::log(2.0) * 1e-9, 0.01 * 1e-9);
}

// --- Deterministic parallel scenario sweeps ------------------------------

TEST(RomSweep, ParallelScenarioSweepIsThreadCountInvariant) {
  // One shared reduced bus evaluated across a driver x load grid through
  // the sweep engine: results must be bit-identical at any thread count
  // (and data-race-free under TSan).
  const rom::BusRom bus(paper_bus(4, 16));
  const cnti::core::SweepGrid grid(
      {{"driver_ohm", {1e3, 3e3, 10e3}}, {"load_f", {0.1e-15, 0.5e-15}}});
  const auto eval = [&bus](const cnti::core::SweepPoint& p) {
    rom::BusScenario sc;
    sc.driver_ohm = p.at("driver_ohm");
    sc.receiver_load_f = p.at("load_f");
    return bus.evaluate(sc, 200).peak_noise_v;
  };
  const auto serial =
      cnti::core::run_sweep(grid, eval, {.threads = 1, .grain = 1});
  const auto parallel =
      cnti::core::run_sweep(grid, eval, {.threads = 3, .grain = 1});
  ASSERT_EQ(serial.size(), grid.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
  // And the sweep found a nonzero noise landscape.
  EXPECT_GT(*std::max_element(serial.begin(), serial.end()), 0.0);
}

// --- ROM as a preconditioner for full-system Krylov solves ---------------

TEST(RomPrecond, BasisIsRetainedAndSurvivesTermination) {
  const rom::BusRom bus(paper_bus(4, 12));
  const rom::ReducedModel& m = bus.model();
  ASSERT_TRUE(m.has_basis());
  EXPECT_EQ(static_cast<int>(m.basis().size()), m.order());
  for (const auto& col : m.basis()) {
    EXPECT_EQ(static_cast<int>(col.size()), m.full_order());
  }
  // Terminations are reduced-space updates: the span (and the stored V)
  // is unchanged.
  const rom::ReducedModel term = m.terminated({{0, 0, 1e-4, 0.0}});
  EXPECT_TRUE(term.has_basis());
  EXPECT_EQ(term.basis().size(), m.basis().size());

  // Without keep_basis (the prima_reduce default) nothing is stored and
  // the preconditioner constructor rejects the empty basis.
  cir::NodeId out = 0;
  cir::Circuit ckt = rc_lowpass(&out);
  const rom::ReducedModel plain =
      rom::prima_reduce(rom::extract_state_space(ckt), {.order = 2});
  EXPECT_FALSE(plain.has_basis());
  cnti::numerics::SparseBuilder b(3, 3);
  for (std::size_t i = 0; i < 3; ++i) b.add(i, i, 1.0);
  EXPECT_THROW(rom::RomPreconditioner(b.build(), plain.basis()),
               cnti::PreconditionError);
}

TEST(RomPrecond, FullSystemSolvesMatchSparseLu) {
  // full_system() must assemble the same terminated network evaluate()
  // folds into the reduced matrices; its LU solution is the oracle for
  // every iterative variant below.
  const rom::BusRom bus(paper_bus(8, 32));
  const rom::BusScenario sc;
  const auto sys = bus.full_system(sc, bus.nominal_shift_rad_per_s());
  ASSERT_EQ(static_cast<int>(sys.a.rows()), bus.full_order());

  cnti::numerics::SparseLu lu;
  lu.factorize(sys.a);
  const auto x_lu = lu.solve(sys.rhs);

  cnti::numerics::IterativeOptions opt;
  opt.max_iterations = 20000;
  opt.tolerance = 1e-12;
  const auto pre = bus.preconditioner(sys.a);
  const auto bicg =
      cnti::numerics::bicgstab(sys.a, sys.rhs, opt, {}, pre.fn());
  ASSERT_TRUE(bicg.converged);
  const auto gm = cnti::numerics::gmres(sys.a, sys.rhs, opt, {}, pre.fn());
  ASSERT_TRUE(gm.converged);
  for (std::size_t i = 0; i < x_lu.size(); ++i) {
    EXPECT_NEAR(bicg.x[i], x_lu[i], 1e-8);
    EXPECT_NEAR(gm.x[i], x_lu[i], 1e-8);
  }
}

TEST(RomPrecond, RomPreconditionedBicgstabBeatsJacobiOnPaperBus) {
  // The acceptance benchmark of the iterative path: on the 16 x 128 paper
  // bus (2096 unknowns) the two-level ROM preconditioner must converge at
  // least 5x faster than plain Jacobi at 1e-10 relative residual while
  // matching the sparse LU solution to 1e-8. (Empirically Jacobi stalls
  // near 1e-7 without converging at all; the 5x bound holds either way.)
  const rom::BusRom bus(paper_bus(16, 128));
  const rom::BusScenario sc;
  const auto sys = bus.full_system(sc, bus.nominal_shift_rad_per_s());

  cnti::numerics::SparseLu lu;
  lu.factorize(sys.a);
  const auto x_lu = lu.solve(sys.rhs);

  cnti::numerics::IterativeOptions opt;
  opt.max_iterations = 20000;
  opt.tolerance = 1e-10;
  const auto jac = cnti::numerics::bicgstab(sys.a, sys.rhs, opt);
  const auto pre = bus.preconditioner(sys.a);
  const auto romit =
      cnti::numerics::bicgstab(sys.a, sys.rhs, opt, {}, pre.fn());

  ASSERT_TRUE(romit.converged);
  EXPECT_GT(romit.iterations, 0u);
  const std::size_t jacobi_cost =
      jac.converged ? jac.iterations : opt.max_iterations;
  EXPECT_GE(jacobi_cost, 5 * romit.iterations)
      << "jacobi: " << jac.iterations << " (converged=" << jac.converged
      << "), rom: " << romit.iterations;
  for (std::size_t i = 0; i < x_lu.size(); ++i) {
    EXPECT_NEAR(romit.x[i], x_lu[i], 1e-8);
  }
}

// --- Corner-anchored parametrized bus ROM --------------------------------

TEST(ParamRom, DegenerateBoxIsBitwiseBusRom) {
  // A fully collapsed box (lo == hi == nominal) has a single corner, keeps
  // that corner's PRIMA basis verbatim and must reproduce the plain
  // topology-keyed BusRom bit for bit — window, transient and all.
  const cir::BusConfig cfg = paper_bus(4, 8);
  const rom::ParametrizedBusRom prom(cfg.topology(), rom::BusTechBox{});
  const rom::BusRom bus(cfg.topology());
  EXPECT_EQ(prom.corners(), 1);
  EXPECT_EQ(prom.order(), bus.order());
  EXPECT_EQ(prom.full_order(), bus.full_order());

  rom::BusScenario sc;
  sc.driver_ohm = 2e3;
  sc.receiver_load_f = 0.5e-15;
  const rom::BusTechPoint nominal;
  EXPECT_EQ(prom.window_s(nominal, sc), bus.window_s(sc));
  const auto a = prom.evaluate(nominal, sc, 300);
  const auto b = bus.evaluate(sc, 300);
  EXPECT_EQ(a.peak_noise_v, b.peak_noise_v);
  EXPECT_EQ(a.peak_time_s, b.peak_time_s);
  EXPECT_EQ(a.worst_victim, b.worst_victim);
  EXPECT_EQ(a.aggressor_delay_s, b.aggressor_delay_s);
}

TEST(ParamRom, CornerAnchorsMatchFullMnaWithinOnePercent) {
  const cir::BusConfig cfg = paper_bus(4, 8);
  rom::BusTechBox box;
  box.lo = {0.85, 0.90, 0.80};
  box.hi = {1.15, 1.10, 1.20};
  const rom::ParametrizedBusRom prom(cfg.topology(), box);
  EXPECT_EQ(prom.corners(), 8);

  rom::BusScenario sc;
  for (const rom::BusTechPoint& p :
       {box.lo, box.hi, rom::BusTechPoint{0.85, 1.10, 0.80}}) {
    cir::BusDrive drive;
    const auto full = cir::analyze_bus_crosstalk(
        cir::make_bus_config(prom.topology_at(p), drive), 400);
    const auto red = prom.evaluate(p, sc, 400);
    EXPECT_EQ(red.worst_victim, full.worst_victim);
    EXPECT_NEAR(red.peak_noise_v, full.peak_noise_v,
                0.01 * std::abs(full.peak_noise_v));
    EXPECT_NEAR(red.aggressor_delay_s, full.aggressor_delay_s,
                0.01 * full.aggressor_delay_s);
  }
}

TEST(ParamRom, InteriorProbesWithinOnePercentOfMna) {
  // The error-bound policy itself: deterministic non-anchor probes vs the
  // full sparse-MNA transient must stay inside the 1% acceptance band.
  const cir::BusConfig cfg = paper_bus(4, 8);
  rom::BusTechBox box;
  box.lo = {0.85, 0.90, 0.80};
  box.hi = {1.15, 1.10, 1.20};
  const rom::ParametrizedBusRom prom(cfg.topology(), box);
  const rom::ParamRomValidation v =
      prom.validate_against_mna(rom::BusScenario{}, 4, 400);
  EXPECT_EQ(v.probes, 4);
  EXPECT_LE(v.max_noise_rel_err, 0.01);
  EXPECT_LE(v.max_delay_rel_err, 0.01);
}

TEST(ParamRom, BlendedModelsStayStableAcrossTheBox) {
  // The blend is a congruence projection of a passive network at every
  // interior point, so stability must hold under any nonnegative
  // termination — not just at the anchors.
  const cir::BusConfig cfg = paper_bus(4, 8);
  rom::BusTechBox box;
  box.lo = {0.7, 0.8, 0.6};
  box.hi = {1.3, 1.2, 1.4};
  const rom::ParametrizedBusRom prom(cfg.topology(), box);
  for (const rom::BusTechPoint& p :
       {rom::BusTechPoint{0.7, 1.2, 1.0}, rom::BusTechPoint{1.0, 1.0, 1.0},
        rom::BusTechPoint{1.29, 0.81, 1.39}}) {
    const rom::ReducedModel m = prom.model_at(p);
    std::vector<rom::PortTermination> loads;
    for (int l = 0; l < 4; ++l) loads.push_back({l, l, 1.0 / 5e3, 0.0});
    for (int l = 0; l < 4; ++l) loads.push_back({4 + l, 4 + l, 0.0, 1e-15});
    EXPECT_TRUE(m.terminated(loads).stable())
        << "r_scale = " << p.resistance_scale;
  }
}

TEST(ParamRom, RejectsBadBoxesAndOutOfBoxPoints) {
  const cir::BusConfig cfg = paper_bus(4, 8);
  rom::BusTechBox zero;
  zero.lo.resistance_scale = 0.0;  // scales must stay positive
  EXPECT_THROW(rom::ParametrizedBusRom(cfg.topology(), zero),
               cnti::PreconditionError);
  rom::BusTechBox inverted;
  inverted.lo.coupling_scale = 1.2;
  inverted.hi.coupling_scale = 0.8;
  EXPECT_THROW(rom::ParametrizedBusRom(cfg.topology(), inverted),
               cnti::PreconditionError);

  rom::BusTechBox box;
  box.lo = {0.9, 0.9, 0.9};
  box.hi = {1.1, 1.1, 1.1};
  const rom::ParametrizedBusRom prom(cfg.topology(), box);
  EXPECT_THROW(prom.model_at({1.2, 1.0, 1.0}), cnti::PreconditionError);
  EXPECT_THROW(prom.evaluate({1.0, 0.5, 1.0}, rom::BusScenario{}, 100),
               cnti::PreconditionError);
}

TEST(ParamRom, WindowTracksTheTechnologyPoint) {
  // The simulated window must be bus_settle_time_s of the *scaled*
  // topology under the scenario's drive — receiver load included — so the
  // ROM grid can never diverge from the full-MNA grid at any sample.
  const cir::BusConfig cfg = paper_bus(4, 8);
  rom::BusTechBox box;
  box.lo = {0.8, 0.8, 0.8};
  box.hi = {1.2, 1.2, 1.2};
  const rom::ParametrizedBusRom prom(cfg.topology(), box);
  rom::BusScenario sc;
  sc.driver_ohm = 3e3;
  sc.receiver_load_f = 40e-15;
  const rom::BusTechPoint p{1.15, 0.85, 1.05};
  cir::BusDrive drive;
  drive.driver_ohm = sc.driver_ohm;
  drive.receiver_load_f = sc.receiver_load_f;
  drive.vdd_v = sc.vdd_v;
  drive.edge_time_s = sc.edge_time_s;
  EXPECT_EQ(prom.window_s(p, sc),
            cir::bus_settle_time_s(prom.topology_at(p), drive));
}

}  // namespace
