// Tests for the materials substrate: Cu size effects, CNT mean free path,
// Cu-CNT composite effective medium.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "materials/cnt_mfp.hpp"
#include "materials/composite.hpp"
#include "materials/copper.hpp"
#include "materials/thermal_props.hpp"

namespace cm = cnti::materials;

namespace {

TEST(Copper, BulkResistivityAtRoomTemperature) {
  EXPECT_NEAR(cm::cu_bulk_resistivity(300.0), 1.72e-8, 1e-10);
  // ~0.39%/K increase.
  EXPECT_GT(cm::cu_bulk_resistivity(400.0), cm::cu_bulk_resistivity(300.0));
}

TEST(Copper, MayadasShatzkesLimits) {
  // Huge grains: no penalty.
  EXPECT_NEAR(cm::mayadas_shatzkes_factor(1.0, 0.27), 1.0, 1e-6);
  // Grain size = mfp with R = 0.27: noticeable penalty, factor > 1.3.
  const double f = cm::mayadas_shatzkes_factor(39e-9, 0.27);
  EXPECT_GT(f, 1.3);
  EXPECT_LT(f, 3.0);
  // Monotonic in reflectivity.
  EXPECT_GT(cm::mayadas_shatzkes_factor(39e-9, 0.5),
            cm::mayadas_shatzkes_factor(39e-9, 0.1));
}

TEST(Copper, FuchsSondheimerLimits) {
  // Wide wire: ~no penalty (additive form leaves ~2% at 1 um).
  EXPECT_NEAR(cm::fuchs_sondheimer_factor(1e-6, 1e-6, 0.25), 1.0, 0.03);
  // 10 nm wire: large penalty.
  EXPECT_GT(cm::fuchs_sondheimer_factor(10e-9, 20e-9, 0.25), 2.0);
  // Fully specular: no penalty at any size.
  EXPECT_NEAR(cm::fuchs_sondheimer_factor(10e-9, 10e-9, 1.0), 1.0, 1e-12);
}

TEST(Copper, EffectiveResistivityGrowsAsWiresShrink) {
  cm::CuLineSpec wide;
  wide.width_m = 100e-9;
  wide.height_m = 200e-9;
  cm::CuLineSpec narrow;
  narrow.width_m = 15e-9;
  narrow.height_m = 30e-9;
  EXPECT_GT(cm::cu_effective_resistivity(narrow),
            2.0 * cm::cu_effective_resistivity(wide));
}

TEST(Copper, LineResistanceScalesWithLength) {
  cm::CuLineSpec spec;
  const cm::CuLine line(spec);
  EXPECT_NEAR(line.resistance(2e-6) / line.resistance(1e-6), 2.0, 1e-12);
}

TEST(Copper, PaperAmpacityFigure) {
  // Paper Sec. I: a 100 nm x 50 nm Cu line carries up to ~50 uA.
  cm::CuLineSpec spec;
  spec.width_m = 100e-9;
  spec.height_m = 50e-9;
  spec.barrier_thickness_m = 0.0;  // paper quotes the drawn cross-section
  const cm::CuLine line(spec);
  EXPECT_NEAR(cnti::units::to_uA(line.max_current()), 50.0, 1.0);
}

TEST(Copper, BarrierReducesConductingArea) {
  cm::CuLineSpec with_barrier;
  with_barrier.width_m = 20e-9;
  with_barrier.height_m = 40e-9;
  with_barrier.barrier_thickness_m = 2e-9;
  cm::CuLineSpec no_barrier = with_barrier;
  no_barrier.barrier_thickness_m = 0.0;
  EXPECT_LT(cm::CuLine(with_barrier).effective_conductivity(),
            cm::CuLine(no_barrier).effective_conductivity());
}

TEST(Copper, RejectsBarrierConsumingWire) {
  cm::CuLineSpec spec;
  spec.width_m = 3e-9;
  spec.barrier_thickness_m = 2e-9;
  EXPECT_THROW(cm::CuLine{spec}, cnti::PreconditionError);
}

TEST(CntMfp, AcousticScalesWithDiameterAndTemperature) {
  // lambda ~ 1000 d at 300 K.
  EXPECT_NEAR(cm::acoustic_mfp(1e-9, 300.0), 1e-6, 1e-9);
  EXPECT_NEAR(cm::acoustic_mfp(10e-9, 300.0), 10e-6, 1e-8);
  // Hotter -> shorter.
  EXPECT_LT(cm::acoustic_mfp(1e-9, 400.0), cm::acoustic_mfp(1e-9, 300.0));
}

TEST(CntMfp, DefectsShortenMfp) {
  cm::MfpSpec pristine;
  pristine.diameter_m = 7.5e-9;
  cm::MfpSpec defective = pristine;
  defective.defect_spacing_m = 0.5e-6;
  EXPECT_LT(cm::effective_mfp(defective), cm::effective_mfp(pristine));
  // Matthiessen: 1/leff = 1/7.5um + 1/0.5um.
  EXPECT_NEAR(cm::effective_mfp(defective),
              1.0 / (1.0 / 7.5e-6 + 1.0 / 0.5e-6), 1e-9);
}

TEST(CntMfp, OpticalPhononOnlyAboveThreshold) {
  EXPECT_GT(cm::optical_mfp(1e-9, 0.1, 1e-6), 1e20);  // below 0.16 eV
  EXPECT_LT(cm::optical_mfp(1e-9, 1.0, 1e-6), 1e-6);  // high bias
}

TEST(CntMfp, AcousticInverseTemperatureScalingExact) {
  // lambda_ap = k d (300 K / T): doubling T halves the mfp exactly.
  EXPECT_NEAR(cm::acoustic_mfp(7.5e-9, 600.0),
              0.5 * cm::acoustic_mfp(7.5e-9, 300.0), 1e-15);
}

TEST(CntMfp, MatthiessenNeverExceedsShortestMechanism) {
  cm::MfpSpec spec;
  spec.diameter_m = 7.5e-9;
  spec.defect_spacing_m = 0.3e-6;
  spec.bias_v = 0.5;
  const double eff = cm::effective_mfp(spec);
  EXPECT_LE(eff, cm::acoustic_mfp(spec.diameter_m, spec.temperature_k));
  EXPECT_LE(eff, spec.defect_spacing_m);
}

TEST(Composite, PureCuMatchesMatrixConductivity) {
  cm::CompositeSpec spec;
  spec.cnt_volume_fraction = 0.0;
  spec.void_fraction = 0.0;
  EXPECT_NEAR(cm::composite_conductivity(spec),
              1.0 / spec.cu_matrix_resistivity, 1.0);
}

TEST(Composite, AmpacityRisesWithCntFraction) {
  cm::CompositeSpec lo;
  lo.cnt_volume_fraction = 0.1;
  cm::CompositeSpec hi = lo;
  hi.cnt_volume_fraction = 0.6;
  EXPECT_GT(cm::composite_max_current_density(hi),
            cm::composite_max_current_density(lo));
  // Never exceeds the CNT intrinsic limit.
  EXPECT_LE(cm::composite_max_current_density(hi),
            cnti::cntconst::kCntMaxCurrentDensity);
}

TEST(Composite, VoidsDegradeConductivity) {
  cm::CompositeSpec good;
  good.void_fraction = 0.0;
  cm::CompositeSpec bad = good;
  bad.void_fraction = 0.2;
  EXPECT_GT(cm::composite_conductivity(good),
            cm::composite_conductivity(bad));
}

TEST(Composite, EmLifetimeImprovesWithCntShare) {
  cm::CompositeSpec spec;
  spec.cnt_volume_fraction = 0.3;
  EXPECT_GT(cm::composite_em_lifetime_factor(spec), 1.0);
  cm::CompositeSpec none;
  none.cnt_volume_fraction = 0.0;
  EXPECT_NEAR(cm::composite_em_lifetime_factor(none), 1.0, 1e-9);
}

TEST(Composite, ThermalConductivityBetweenConstituents) {
  cm::CompositeSpec spec;
  spec.cnt_volume_fraction = 0.3;
  spec.void_fraction = 0.0;
  const double k = cm::composite_thermal_conductivity(spec);
  EXPECT_GT(k, cnti::cuconst::kThermalConductivity);
  EXPECT_LT(k, cnti::cntconst::kCntThermalConductivityHigh);
}

TEST(Composite, RejectsInvalidFractions) {
  cm::CompositeSpec spec;
  spec.cnt_volume_fraction = 1.5;
  EXPECT_THROW(cm::composite_conductivity(spec), cnti::PreconditionError);
}

TEST(ThermalProps, PaperValues) {
  EXPECT_DOUBLE_EQ(cm::thermal_copper().conductivity_w_mk, 385.0);
  EXPECT_DOUBLE_EQ(cm::thermal_cnt_bundle(0.0).conductivity_w_mk, 3000.0);
  EXPECT_DOUBLE_EQ(cm::thermal_cnt_bundle(1.0).conductivity_w_mk, 10000.0);
}

}  // namespace
