// Unit tests for the numerics substrate: dense LU, sparse CG/BiCGSTAB,
// tridiagonal, quadrature, roots, least squares, interpolation, statistics,
// dense nonsymmetric eigenvalues.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "numerics/eig.hpp"
#include "numerics/interp.hpp"
#include "numerics/leastsq.hpp"
#include "numerics/matrix.hpp"
#include "numerics/ordering.hpp"
#include "numerics/quadrature.hpp"
#include "numerics/rng.hpp"
#include "numerics/roots.hpp"
#include "numerics/solvers.hpp"
#include "numerics/sparse.hpp"
#include "numerics/sparse_lu.hpp"
#include "numerics/stats.hpp"

namespace cn = cnti::numerics;

namespace {

TEST(Matrix, MultiplyIdentity) {
  cn::MatrixD a(3, 3);
  int v = 1;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  const cn::MatrixD i3 = cn::MatrixD::identity(3);
  const cn::MatrixD b = a * i3;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(b(i, j), a(i, j));
}

TEST(Matrix, LuSolvesRandomSystem) {
  cn::Rng rng(42);
  const std::size_t n = 20;
  cn::MatrixD a(n, n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = rng.uniform(-2, 2);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
    a(i, i) += 5.0;  // diagonally dominant -> well conditioned
  }
  const std::vector<double> b = a * x_true;
  const std::vector<double> x = cn::solve_dense(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Matrix, LuDeterminantMatchesKnown) {
  cn::MatrixD a(2, 2);
  a(0, 0) = 3;  a(0, 1) = 1;
  a(1, 0) = 4;  a(1, 1) = 2;
  cn::LuFactorization<double> lu(a);
  EXPECT_NEAR(lu.determinant(), 2.0, 1e-12);
}

TEST(Matrix, LuThrowsOnSingular) {
  cn::MatrixD a(2, 2);
  a(0, 0) = 1;  a(0, 1) = 2;
  a(1, 0) = 2;  a(1, 1) = 4;
  EXPECT_THROW(cn::LuFactorization<double>{a}, cnti::NumericalError);
}

TEST(Matrix, ComplexInverseRoundTrip) {
  using C = std::complex<double>;
  cn::Rng rng(7);
  const std::size_t n = 12;
  cn::MatrixC a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = C(rng.uniform(-1, 1), rng.uniform(-1, 1));
    }
    a(i, i) += C(4.0, 1.0);
  }
  const cn::MatrixC ainv = cn::inverse(a);
  const cn::MatrixC prod = a * ainv;
  const cn::MatrixC err = prod - cn::MatrixC::identity(n);
  EXPECT_LT(err.norm(), 1e-10);
}

TEST(Matrix, AdjointConjugates) {
  using C = std::complex<double>;
  cn::MatrixC a(2, 2);
  a(0, 1) = C(1.0, 2.0);
  const cn::MatrixC ad = a.adjoint();
  EXPECT_DOUBLE_EQ(ad(1, 0).real(), 1.0);
  EXPECT_DOUBLE_EQ(ad(1, 0).imag(), -2.0);
}

TEST(Sparse, BuilderSumsDuplicates) {
  cn::SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 1, 1.0);
  const cn::SparseMatrix m = b.build();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_EQ(m.nnz(), 2u);
}

cn::SparseMatrix laplacian_1d(std::size_t n) {
  cn::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  return b.build();
}

TEST(Solvers, CgSolvesLaplacian) {
  const std::size_t n = 100;
  const auto a = laplacian_1d(n);
  cn::Rng rng(3);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  const auto b = a * x_true;
  const auto res = cn::conjugate_gradient(a, b, {.max_iterations = 2000,
                                                 .tolerance = 1e-12});
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-7);
}

TEST(Solvers, CgZeroRhsGivesZero) {
  const auto a = laplacian_1d(10);
  const auto res = cn::conjugate_gradient(a, std::vector<double>(10, 0.0));
  EXPECT_TRUE(res.converged);
  for (double v : res.x) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Solvers, BicgstabSolvesNonsymmetric) {
  const std::size_t n = 50;
  cn::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 4.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -2.0);  // non-symmetric
  }
  const auto a = b.build();
  std::vector<double> x_true(n, 1.0);
  const auto rhs = a * x_true;
  const auto res = cn::bicgstab(a, rhs, {.max_iterations = 2000,
                                         .tolerance = 1e-12});
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], 1.0, 1e-8);
}

TEST(Solvers, TridiagonalMatchesDense) {
  const std::size_t n = 8;
  std::vector<double> sub(n - 1, -1.0), diag(n, 3.0), sup(n - 1, -0.5);
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = static_cast<double>(i + 1);
  const auto x = cn::solve_tridiagonal(sub, diag, sup, rhs);

  cn::MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 3.0;
    if (i > 0) a(i, i - 1) = -1.0;
    if (i + 1 < n) a(i, i + 1) = -0.5;
  }
  const auto x_dense = cn::solve_dense(a, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_dense[i], 1e-12);
}

TEST(Solvers, TridiagonalZeroFinalPivotThrows) {
  // Regression: the last pivot b[n-1] used to be divided without the
  // zero-pivot check applied to every earlier pivot. This system is
  // singular exactly there: elimination turns the final diagonal into
  // 1 - (1*1)/1 = 0.
  std::vector<double> sub = {1.0};
  std::vector<double> diag = {1.0, 1.0};
  std::vector<double> sup = {1.0};
  std::vector<double> rhs = {1.0, 2.0};
  EXPECT_THROW(cn::solve_tridiagonal(sub, diag, sup, rhs),
               cnti::NumericalError);

  // 1x1 degenerate case goes through the same final-pivot check.
  EXPECT_THROW(cn::solve_tridiagonal({}, {0.0}, {}, {1.0}),
               cnti::NumericalError);
}

TEST(Solvers, BicgstabRejectsMismatchedSizes) {
  // Regression: bicgstab used to trust b.size() and a non-empty x0's size
  // blindly, reading out of bounds instead of throwing.
  const auto a = laplacian_1d(8);
  EXPECT_THROW(cn::bicgstab(a, std::vector<double>(7, 1.0)),
               cnti::PreconditionError);
  EXPECT_THROW(cn::bicgstab(a, std::vector<double>(8, 1.0), {},
                            std::vector<double>(5, 0.0)),
               cnti::PreconditionError);
}

TEST(Solvers, BicgstabBreakdownReturnsFiniteIterateAndTrueResidual) {
  // Regression: alpha = rho / (rhat'v) was formed unguarded. On this
  // rotation rhat'v is exactly zero at the first iteration (r0 = b = rhat,
  // A r0 is orthogonal to r0), which used to poison x with inf/NaN. The
  // guarded solver must break cleanly: finite iterate and the *true*
  // residual of that iterate, not a stale recurrence value.
  cn::SparseBuilder bld(2, 2);
  bld.add(0, 1, 1.0);
  bld.add(1, 0, -1.0);
  const auto a = bld.build();
  const std::vector<double> b = {1.0, 1.0};
  const auto res = cn::bicgstab(a, b, {.max_iterations = 50,
                                       .tolerance = 1e-12});
  EXPECT_FALSE(res.converged);
  for (const double v : res.x) EXPECT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(res.residual));
  // x is still the zero start, so the true relative residual is exactly 1.
  EXPECT_NEAR(res.residual, 1.0, 1e-12);
}

TEST(Solvers, CgExactSeedConvergesInZeroIterations) {
  // Regression: a seed already at the solution made the very first p'Ap
  // breakdown check trip, reporting converged=false with residual 0.0.
  const std::size_t n = 40;
  const auto a = laplacian_1d(n);
  cn::Rng rng(7);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  const auto b = a * x_true;
  const auto res =
      cn::conjugate_gradient(a, b, {.tolerance = 1e-10}, x_true);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_LT(res.residual, 1e-10);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(res.x[i], x_true[i]);
}

TEST(Solvers, BicgstabExactSeedConvergesInZeroIterations) {
  const std::size_t n = 40;
  const auto a = laplacian_1d(n);
  std::vector<double> x_true(n, 2.5);
  const auto b = a * x_true;
  const auto res = cn::bicgstab(a, b, {.tolerance = 1e-10}, x_true);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(res.x[i], x_true[i]);
}

TEST(Solvers, GmresSolvesNonsymmetric) {
  const std::size_t n = 50;
  cn::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 4.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -2.0);  // non-symmetric
  }
  const auto a = b.build();
  std::vector<double> x_true(n, 1.0);
  const auto rhs = a * x_true;
  const auto res = cn::gmres(a, rhs, {.max_iterations = 2000,
                                      .tolerance = 1e-12});
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], 1.0, 1e-8);
}

TEST(Solvers, GmresShortRestartStillConverges) {
  // Restart length far below the Krylov dimension the problem needs:
  // convergence must survive the restarts (right preconditioning keeps the
  // monitored residual the true one across cycles).
  const std::size_t n = 60;
  const auto a = laplacian_1d(n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) {
    x_true[i] = std::sin(0.37 * static_cast<double>(i));
  }
  const auto rhs = a * x_true;
  const auto res = cn::gmres(a, rhs, {.max_iterations = 20000,
                                      .tolerance = 1e-11,
                                      .restart = 5});
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-6);
}

TEST(Solvers, GmresGuardsMatchBicgstab) {
  const auto a = laplacian_1d(8);
  EXPECT_THROW(cn::gmres(a, std::vector<double>(3, 1.0)),
               cnti::PreconditionError);
  EXPECT_THROW(cn::gmres(a, std::vector<double>(8, 1.0), {},
                         std::vector<double>(2, 0.0)),
               cnti::PreconditionError);
  // Exact seed: zero iterations, like CG/BiCGSTAB.
  std::vector<double> x_true(8, 1.0);
  const auto rhs = a * x_true;
  const auto res = cn::gmres(a, rhs, {.tolerance = 1e-10}, x_true);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
}

// --- Fill-reducing ordering ----------------------------------------------

/// Arrow matrix: dense first row/column plus the diagonal. Eliminating the
/// hub first fills the factor completely; any minimum-degree method must
/// defer it to the end, keeping the factor O(n).
cn::SparseMatrix arrow_matrix(std::size_t n) {
  cn::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) b.add(i, i, 4.0);
  for (std::size_t i = 1; i < n; ++i) {
    b.add(0, i, -1.0);
    b.add(i, 0, -1.0);
  }
  return b.build();
}

TEST(Ordering, AmdReturnsValidPermutation) {
  const auto a = laplacian_1d(50);
  const auto perm = cn::amd_ordering(a);
  ASSERT_EQ(perm.size(), 50u);
  std::vector<char> seen(50, 0);
  for (const std::size_t p : perm) {
    ASSERT_LT(p, 50u);
    EXPECT_FALSE(seen[p]) << "index " << p << " appears twice";
    seen[p] = 1;
  }
}

TEST(Ordering, AmdDefersArrowHubToEnd) {
  const auto a = arrow_matrix(30);
  const auto perm = cn::amd_ordering(a);
  ASSERT_EQ(perm.size(), 30u);
  // Every leaf has degree 1, the hub degree n-1: the hub must wait until
  // its degree has decayed. Once a single leaf remains both have degree 1
  // and the lowest-index tie-break may pick the hub first, so "deferred"
  // means one of the final two positions.
  const auto hub = std::find(perm.begin(), perm.end(), 0u) - perm.begin();
  EXPECT_GE(hub, 28);
}

TEST(Ordering, AmdOrderingReducesArrowFill) {
  const std::size_t n = 64;
  const auto a = arrow_matrix(n);
  cn::SparseLu natural;
  natural.factorize(a);
  cn::SparseLu amd;
  amd.set_column_ordering(cn::amd_ordering(a));
  amd.factorize(a);
  const std::size_t nnz_natural = natural.nnz_l() + natural.nnz_u();
  const std::size_t nnz_amd = amd.nnz_l() + amd.nnz_u();
  // Natural order eliminates the hub first -> dense factor, O(n^2)
  // entries; AMD keeps it O(n).
  EXPECT_LT(nnz_amd * 4, nnz_natural);
  EXPECT_LE(nnz_amd, 4 * n);
}

TEST(Ordering, OrderedLuMatchesDenseSolve) {
  const std::size_t n = 40;
  cn::Rng rng(11);
  // Random sparse diagonally-dominant system with symmetric pattern.
  cn::SparseBuilder b(n, n);
  cn::MatrixD dense(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 8.0);
    dense(i, i) += 8.0;
  }
  for (int k = 0; k < 120; ++k) {
    const auto i =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
    const auto j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(n) - 1));
    if (i == j) continue;
    const double v = rng.uniform(-1, 1);
    b.add(i, j, v);
    b.add(j, i, 0.0);  // keep the pattern symmetric, values free
    dense(i, j) += v;
  }
  const auto a = b.build();
  std::vector<double> rhs(n);
  for (auto& v : rhs) v = rng.uniform(-1, 1);

  cn::SparseLu lu;
  lu.set_column_ordering(cn::amd_ordering(a));
  lu.factorize(a);
  const auto x = lu.solve(rhs);
  const auto x_ref = cn::solve_dense(dense, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-10);
}

TEST(Ordering, OrderedLuReusesSymbolicAcrossRefactorize) {
  const auto a = arrow_matrix(24);
  cn::SparseLu lu;
  lu.set_column_ordering(cn::amd_ordering(a));
  lu.factorize(a);
  EXPECT_FALSE(lu.reused_symbolic());

  // Same pattern, same ordering: the symbolic analysis must be replayed,
  // exactly as on the unordered path.
  lu.factorize(a);
  EXPECT_TRUE(lu.reused_symbolic());

  // Re-setting the identical ordering must not invalidate the analysis...
  lu.set_column_ordering(cn::amd_ordering(a));
  lu.factorize(a);
  EXPECT_TRUE(lu.reused_symbolic());

  // ...but a different ordering must.
  std::vector<std::size_t> natural(24);
  for (std::size_t i = 0; i < 24; ++i) natural[i] = i;
  lu.set_column_ordering(natural);
  lu.factorize(a);
  EXPECT_FALSE(lu.reused_symbolic());

  const std::vector<double> rhs(24, 1.0);
  const auto x = lu.solve(rhs);
  std::vector<double> ax(24);
  a.multiply(x, ax);
  for (std::size_t i = 0; i < 24; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-10);
}

TEST(Ordering, InvalidPermutationIsRejected) {
  const auto a = laplacian_1d(6);
  cn::SparseLu lu;
  lu.set_column_ordering({0, 0, 1, 2, 3, 4});  // duplicate
  EXPECT_THROW(lu.factorize(a), cnti::PreconditionError);
  cn::SparseLu lu2;
  lu2.set_column_ordering({0, 1, 2});  // wrong length
  EXPECT_THROW(lu2.factorize(a), cnti::PreconditionError);
}

TEST(Quadrature, AdaptiveSimpsonPolynomial) {
  const auto f = [](double x) { return 3.0 * x * x; };
  EXPECT_NEAR(cn::integrate_adaptive(f, 0.0, 2.0), 8.0, 1e-10);
}

TEST(Quadrature, AdaptiveSimpsonGaussian) {
  const auto f = [](double x) { return std::exp(-x * x); };
  EXPECT_NEAR(cn::integrate_adaptive(f, -6.0, 6.0, 1e-12),
              std::sqrt(M_PI), 1e-9);
}

TEST(Quadrature, Gauss16Exact) {
  const auto f = [](double x) { return x * x * x + 2.0 * x; };
  EXPECT_NEAR(cn::integrate_gauss16(f, -1.0, 3.0), 28.0, 1e-10);
}

TEST(Quadrature, TrapezoidTabulated) {
  std::vector<double> y = {0.0, 1.0, 2.0, 3.0};
  EXPECT_NEAR(cn::integrate_trapezoid(y, 1.0), 4.5, 1e-14);
}

TEST(Roots, BrentFindsCosRoot) {
  const double r = cn::find_root_brent([](double x) { return std::cos(x); },
                                       1.0, 2.0);
  EXPECT_NEAR(r, M_PI / 2.0, 1e-10);
}

TEST(Roots, BrentRequiresBracket) {
  EXPECT_THROW(cn::find_root_brent([](double x) { return x * x + 1.0; },
                                   -1.0, 1.0),
               cnti::PreconditionError);
}

TEST(Roots, AutoBracketExpands) {
  const double r = cn::find_root_auto_bracket(
      [](double x) { return x - 100.0; }, 0.0, 1.0);
  EXPECT_NEAR(r, 100.0, 1e-8);
}

TEST(LeastSq, ExactLineRecovered) {
  std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y;
  for (double v : x) y.push_back(2.5 + 1.5 * v);
  const auto fit = cn::fit_line(x, y);
  EXPECT_NEAR(fit.intercept, 2.5, 1e-12);
  EXPECT_NEAR(fit.slope, 1.5, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LeastSq, NoisyLineWithinErrorBars) {
  cn::Rng rng(11);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double xi = i * 0.1;
    x.push_back(xi);
    y.push_back(1.0 + 0.5 * xi + rng.normal(0.0, 0.05));
  }
  const auto fit = cn::fit_line(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 4.0 * fit.slope_stderr + 1e-3);
  EXPECT_NEAR(fit.intercept, 1.0, 4.0 * fit.intercept_stderr + 1e-2);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LeastSq, WeightedFitUsesWeights) {
  // Two clusters; the heavily weighted one should dominate the intercept.
  std::vector<double> x = {0, 0, 1, 1};
  std::vector<double> y = {0.0, 10.0, 1.0, 11.0};
  std::vector<double> w = {100.0, 0.01, 100.0, 0.01};
  const auto fit = cn::fit_line_weighted(x, y, w);
  EXPECT_NEAR(fit.intercept, 0.0, 0.05);
  EXPECT_NEAR(fit.slope, 1.0, 0.05);
}

TEST(LeastSq, LinearModelQuadratic) {
  // Fit y = b0 + b1 x + b2 x^2 exactly.
  std::vector<double> xs = {-2, -1, 0, 1, 2, 3};
  cn::MatrixD a(xs.size(), 3);
  std::vector<double> y(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = xs[i];
    a(i, 2) = xs[i] * xs[i];
    y[i] = 4.0 - 2.0 * xs[i] + 0.5 * xs[i] * xs[i];
  }
  const auto beta = cn::fit_linear_model(a, y);
  EXPECT_NEAR(beta[0], 4.0, 1e-10);
  EXPECT_NEAR(beta[1], -2.0, 1e-10);
  EXPECT_NEAR(beta[2], 0.5, 1e-10);
}

TEST(Interp, LinearInterpolationAndClamp) {
  cn::LinearInterpolator f({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);
  EXPECT_DOUBLE_EQ(f(1.5), 5.0);
  EXPECT_DOUBLE_EQ(f(-1.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(f(5.0), 0.0);    // clamped
}

TEST(Interp, FirstCrossingInterpolates) {
  std::vector<double> t = {0, 1, 2, 3};
  std::vector<double> y = {0, 0, 1, 1};
  EXPECT_NEAR(cn::first_crossing_time(t, y, 0.5, /*rising=*/true), 1.5,
              1e-12);
  EXPECT_LT(cn::first_crossing_time(t, y, 0.5, /*rising=*/false), 0.0);
}

TEST(Stats, SummaryKnownSample) {
  const auto s = cn::summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, HistogramCountsAll) {
  cn::Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(rng.uniform(0, 1));
  const auto h = cn::histogram(sample, 0.0, 1.0, 10);
  std::size_t total = 0;
  for (auto c : h.counts) total += c;
  EXPECT_EQ(total, sample.size());
}

TEST(Rng, DeterministicBySeed) {
  cn::Rng a(123), b(123);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  cn::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal_truncated(5.0, 3.0, 4.0, 6.0);
    EXPECT_GE(v, 4.0);
    EXPECT_LE(v, 6.0);
  }
}

TEST(Rng, TruncatedNormalThrowsWhenRejectionIsExhausted) {
  // A [50, 51] window on a standard normal has ~1e-545 acceptance
  // probability. The old behavior silently returned the clamped mean
  // (50.0), biasing every downstream statistic; now it must report.
  cn::Rng rng(9);
  EXPECT_THROW(rng.normal_truncated(0.0, 1.0, 50.0, 51.0),
               cnti::NumericalError);
}

TEST(Rng, SplitMix64KnownAnswerVector) {
  // Reference outputs for splitmix64 from seed 0 (Vigna's test vector).
  std::uint64_t state = 0;
  EXPECT_EQ(cn::detail::splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(cn::detail::splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(cn::detail::splitmix64(state), 0x06c45d188009454fULL);
}

TEST(Rng, ForkKeepsTheRootSeed) {
  cn::Rng root(321);
  EXPECT_EQ(root.seed(), 321u);
  cn::Rng child = root.fork(2);
  EXPECT_NE(child.seed(), root.seed());
  // fork is deterministic and side-effect free on the parent.
  cn::Rng again = root.fork(2);
  EXPECT_EQ(child.seed(), again.seed());
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child.normal(), again.normal());
  }
}

TEST(Rng, LognormalMedianApproximatelyCorrect) {
  cn::Rng rng(13);
  std::vector<double> s;
  for (int i = 0; i < 20000; ++i) s.push_back(rng.lognormal_median(7.5, 0.2));
  const auto sum = cn::summarize(s);
  EXPECT_NEAR(sum.median, 7.5, 0.1);
}

// ---------------------------------------------------------------------------
// Property-style regression tests: random systems drawn via cn::Rng, with
// invariants (residual bounds, symmetry, consistency across solvers) asserted
// rather than single hand-picked answers.
// ---------------------------------------------------------------------------

// Random symmetric diagonally dominant matrix with positive diagonal -> SPD.
cn::SparseMatrix random_spd(std::size_t n, cn::Rng& rng) {
  std::vector<std::vector<std::pair<std::size_t, double>>> off(n);
  std::vector<double> row_abs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!rng.bernoulli(std::min(1.0, 6.0 / static_cast<double>(n)))) {
        continue;
      }
      const double v = rng.uniform(-1.0, 1.0);
      off[i].push_back({j, v});
      row_abs[i] += std::abs(v);
      row_abs[j] += std::abs(v);
    }
  }
  cn::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, row_abs[i] + rng.uniform(0.5, 2.0));
    for (const auto& [j, v] : off[i]) {
      b.add(i, j, v);
      b.add(j, i, v);
    }
  }
  return b.build();
}

TEST(SolverProperties, CgResidualBoundOnRandomSpdSystems) {
  cn::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 30 + 10 * static_cast<std::size_t>(trial);
    const auto a = random_spd(n, rng);
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-3, 3);
    const auto b = a * x_true;
    const auto res = cn::conjugate_gradient(
        a, b, {.max_iterations = 4 * n, .tolerance = 1e-11});
    ASSERT_TRUE(res.converged) << "trial " << trial << " n=" << n;
    // The reported residual must match a recomputation from scratch.
    const auto ax = a * res.x;
    double rnorm = 0.0, bnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      rnorm += (b[i] - ax[i]) * (b[i] - ax[i]);
      bnorm += b[i] * b[i];
    }
    const double rel = std::sqrt(rnorm) / std::sqrt(bnorm);
    EXPECT_LT(rel, 1e-10) << "trial " << trial;
    EXPECT_NEAR(rel, res.residual, 1e-10) << "trial " << trial;
  }
}

TEST(SolverProperties, BicgstabResidualBoundOnRandomSystems) {
  cn::Rng rng(515);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 25 + 5 * static_cast<std::size_t>(trial);
    // Random diagonally dominant, deliberately non-symmetric.
    cn::SparseBuilder builder(n, n);
    std::vector<double> row_abs(n, 0.0);
    std::vector<std::vector<std::pair<std::size_t, double>>> off(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || !rng.bernoulli(std::min(1.0, 4.0 / n))) continue;
        const double v = rng.uniform(-1.0, 1.0);
        off[i].push_back({j, v});
        row_abs[i] += std::abs(v);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      builder.add(i, i, row_abs[i] + rng.uniform(1.0, 2.0));
      for (const auto& [j, v] : off[i]) builder.add(i, j, v);
    }
    const auto a = builder.build();
    std::vector<double> x_true(n);
    for (auto& v : x_true) v = rng.uniform(-2, 2);
    const auto b = a * x_true;
    const auto res =
        cn::bicgstab(a, b, {.max_iterations = 6 * n, .tolerance = 1e-11});
    ASSERT_TRUE(res.converged) << "trial " << trial << " n=" << n;
    const auto ax = a * res.x;
    double rnorm = 0.0, bnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      rnorm += (b[i] - ax[i]) * (b[i] - ax[i]);
      bnorm += b[i] * b[i];
    }
    EXPECT_LT(std::sqrt(rnorm) / std::sqrt(bnorm), 1e-10) << "trial " << trial;
  }
}

TEST(SolverProperties, CgWarmStartNeverNeedsMoreWorkFromSolution) {
  cn::Rng rng(99);
  const auto a = random_spd(200, rng);
  std::vector<double> x_true(200);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  const auto b = a * x_true;
  const auto cold = cn::conjugate_gradient(a, b, {.tolerance = 1e-11});
  ASSERT_TRUE(cold.converged);
  // Re-solving seeded with the converged answer must converge immediately.
  const auto warm =
      cn::conjugate_gradient(a, b, {.tolerance = 1e-10}, cold.x);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2u);
}

TEST(SolverProperties, SparseMatvecMatchesDense) {
  cn::Rng rng(777);
  const std::size_t n = 40;
  const auto s = random_spd(n, rng);
  cn::MatrixD d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) d(i, j) = s.at(i, j);
  }
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const auto ys = s * x;
  const auto yd = d * x;
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(SolverProperties, RandomSpdIsSymmetricWithPositiveDiagonal) {
  cn::Rng rng(31337);
  const auto a = random_spd(60, rng);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_GT(a.at(i, i), 0.0);
    for (std::size_t j = i + 1; j < 60; ++j) {
      EXPECT_DOUBLE_EQ(a.at(i, j), a.at(j, i));
    }
  }
}

TEST(SolverProperties, CgAndDenseLuAgreeOnSameSystem) {
  cn::Rng rng(424242);
  const std::size_t n = 35;
  const auto a = random_spd(n, rng);
  cn::MatrixD d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) d(i, j) = a.at(i, j);
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto cg = cn::conjugate_gradient(a, b, {.tolerance = 1e-12});
  ASSERT_TRUE(cg.converged);
  const auto lu = cn::solve_dense(d, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(cg.x[i], lu[i], 1e-8);
}

TEST(SolverProperties, TridiagonalMatchesCgOnSpdBand) {
  cn::Rng rng(8);
  const std::size_t n = 64;
  std::vector<double> sub(n - 1), diag(n), sup(n - 1), rhs(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    sub[i] = rng.uniform(-1.0, -0.2);
    sup[i] = sub[i];  // symmetric band
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double neighbors = (i > 0 ? std::abs(sub[i - 1]) : 0.0) +
                             (i + 1 < n ? std::abs(sup[i]) : 0.0);
    diag[i] = neighbors + rng.uniform(0.5, 1.5);
    rhs[i] = rng.uniform(-1, 1);
  }
  const auto x_thomas = cn::solve_tridiagonal(sub, diag, sup, rhs);
  cn::SparseBuilder b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, diag[i]);
    if (i > 0) b.add(i, i - 1, sub[i - 1]);
    if (i + 1 < n) b.add(i, i + 1, sup[i]);
  }
  const auto cg = cn::conjugate_gradient(b.build(), rhs, {.tolerance = 1e-13});
  ASSERT_TRUE(cg.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_thomas[i], cg.x[i], 1e-9);
}

// --- Hessenberg-QR eigenvalues -------------------------------------------

TEST(Eigenvalues, DiagonalAndTriangularAreRead) {
  cn::MatrixD a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 7.0;
  a(0, 2) = 100.0;  // strictly upper entries must not matter
  auto e = cn::eigenvalues(a);
  std::sort(e.begin(), e.end(),
            [](auto x, auto y) { return x.real() < y.real(); });
  ASSERT_EQ(e.size(), 3u);
  EXPECT_NEAR(e[0].real(), -1.0, 1e-12);
  EXPECT_NEAR(e[1].real(), 3.0, 1e-12);
  EXPECT_NEAR(e[2].real(), 7.0, 1e-12);
  for (const auto& z : e) EXPECT_NEAR(z.imag(), 0.0, 1e-12);
}

TEST(Eigenvalues, CompanionMatrixRecoversPolynomialRoots) {
  // x^4 - 10x^3 + 35x^2 - 50x + 24 = (x-1)(x-2)(x-3)(x-4).
  cn::MatrixD c(4, 4);
  c(0, 0) = 10.0;
  c(0, 1) = -35.0;
  c(0, 2) = 50.0;
  c(0, 3) = -24.0;
  c(1, 0) = c(2, 1) = c(3, 2) = 1.0;
  auto e = cn::eigenvalues(c);
  std::sort(e.begin(), e.end(),
            [](auto x, auto y) { return x.real() < y.real(); });
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(e[static_cast<std::size_t>(k)].real(), k + 1.0, 1e-9);
    EXPECT_NEAR(e[static_cast<std::size_t>(k)].imag(), 0.0, 1e-9);
  }
}

TEST(Eigenvalues, RotationScalingGivesConjugatePair) {
  // r [cos t, -sin t; sin t, cos t] has eigenvalues r e^{+-it}.
  const double r = 2.5, t = 0.7;
  cn::MatrixD a(2, 2);
  a(0, 0) = a(1, 1) = r * std::cos(t);
  a(0, 1) = -r * std::sin(t);
  a(1, 0) = r * std::sin(t);
  auto e = cn::eigenvalues(a);
  ASSERT_EQ(e.size(), 2u);
  std::sort(e.begin(), e.end(),
            [](auto x, auto y) { return x.imag() < y.imag(); });
  EXPECT_NEAR(e[0].real(), r * std::cos(t), 1e-12);
  EXPECT_NEAR(e[0].imag(), -r * std::sin(t), 1e-12);
  EXPECT_NEAR(e[1].imag(), r * std::sin(t), 1e-12);
}

TEST(Eigenvalues, TraceAndConjugacyOnRandomMatrix) {
  cn::Rng rng(7);
  const std::size_t n = 40;
  cn::MatrixD a(n, n);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
    trace += a(i, i);
  }
  const auto e = cn::eigenvalues(a);
  ASSERT_EQ(e.size(), n);
  std::complex<double> sum(0.0, 0.0);
  for (const auto& z : e) sum += z;
  // Eigenvalue sum equals the trace; imaginary parts cancel in pairs.
  EXPECT_NEAR(sum.real(), trace, 1e-8 * n);
  EXPECT_NEAR(sum.imag(), 0.0, 1e-8 * n);
}

TEST(Eigenvalues, SymmetricMatrixStaysReal) {
  cn::Rng rng(11);
  const std::size_t n = 25;
  cn::MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      a(i, j) = a(j, i) = rng.uniform(-1, 1);
    }
  }
  for (const auto& z : cn::eigenvalues(a)) {
    EXPECT_NEAR(z.imag(), 0.0, 1e-7);
  }
}

TEST(Eigenvalues, RejectsNonSquare) {
  EXPECT_THROW(cn::eigenvalues(cn::MatrixD(2, 3)), cnti::PreconditionError);
  EXPECT_TRUE(cn::eigenvalues(cn::MatrixD()).empty());
}

}  // namespace
