// Tests for the extension features the paper's conclusion calls for:
// repeater design-space exploration, electro-thermal co-simulation, and
// coupled-line crosstalk analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/crosstalk.hpp"
#include "core/mwcnt_line.hpp"
#include "core/repeater.hpp"
#include "thermal/electrothermal.hpp"

namespace cc = cnti::core;
namespace th = cnti::thermal;
namespace cir = cnti::circuit;

namespace {

// --- Repeater insertion ---

cc::LineRlc long_cnt_line(double nc) {
  return cc::make_paper_mwcnt(10, nc, /*contact=*/50e3).rlc();
}

TEST(Repeater, RepeatersHelpLongLines) {
  const auto plan = cc::optimize_repeaters(long_cnt_line(2), 5e-3);
  EXPECT_GT(plan.count, 1);
  EXPECT_LT(plan.total_delay_s, plan.unrepeated_delay_s);
}

TEST(Repeater, ShortLinesNeedNoRepeaters) {
  const auto plan = cc::optimize_repeaters(long_cnt_line(2), 5e-6);
  EXPECT_EQ(plan.count, 1);
  EXPECT_DOUBLE_EQ(plan.total_delay_s, plan.unrepeated_delay_s);
}

TEST(Repeater, DelayFormulaMatchesElmoreByHand) {
  cc::LineRlc line;
  line.series_resistance_ohm = 0.0;
  line.resistance_per_m = 1e9;
  line.capacitance_per_m = 100e-12;
  cc::RepeaterLibrary lib;
  lib.unit_resistance_ohm = 10e3;
  lib.unit_input_cap_f = 0.1e-15;
  lib.unit_output_cap_f = 0.0;
  // One segment, size 1: Elmore = Rd*(Cl+CL) + Rl*(Cl/2+CL).
  const double l = 100e-6;
  const double rl = 1e9 * l, cl = 100e-12 * l;
  const double expected = 10e3 * (cl + 0.1e-15) + rl * (cl / 2 + 0.1e-15);
  EXPECT_NEAR(cc::repeated_line_delay(line, l, 1, 1.0, lib), expected,
              1e-15);
}

TEST(Repeater, ContactResistancePenalizesRepeatersOnCnt) {
  // Each repeater re-pays the CNT contact resistance, so heavily
  // contact-dominated lines want fewer repeaters.
  cc::RepeaterLibrary lib;
  const auto cheap_contacts =
      cc::optimize_repeaters(cc::make_paper_mwcnt(10, 2, 1e3).rlc(), 2e-3,
                             lib);
  const auto costly_contacts =
      cc::optimize_repeaters(cc::make_paper_mwcnt(10, 2, 500e3).rlc(),
                             2e-3, lib);
  EXPECT_GE(cheap_contacts.count, costly_contacts.count);
}

TEST(Repeater, DopingReducesRepeaterDemand) {
  // Doped line has lower distributed resistance -> fewer/lighter
  // repeaters for the same length.
  const auto pristine = cc::optimize_repeaters(long_cnt_line(2), 5e-3);
  const auto doped = cc::optimize_repeaters(long_cnt_line(10), 5e-3);
  EXPECT_LE(doped.count, pristine.count);
  EXPECT_LT(doped.total_delay_s, pristine.total_delay_s);
}

TEST(Repeater, RejectsInvalidPlans) {
  EXPECT_THROW(cc::repeated_line_delay(long_cnt_line(2), 1e-3, 0, 1.0, {}),
               cnti::PreconditionError);
  EXPECT_THROW(
      cc::repeated_line_delay(long_cnt_line(2), 1e-3, 1, 0.5, {}),
      cnti::PreconditionError);
}

// --- Electro-thermal co-simulation ---

th::LineThermalSpec et_line() {
  th::LineThermalSpec s;
  s.length_m = 1e-6;
  s.cross_section_m2 = M_PI * 7.5e-9 * 7.5e-9 / 4.0;
  s.thermal_conductivity = 3000.0;
  s.resistance_per_m = 2e10;  // 20 kOhm
  s.resistance_tcr = 1.5e-3;
  s.substrate_coupling = 0.05;
  return s;
}

TEST(ElectroThermal, LowBiasIsOhmic) {
  const auto op = th::solve_operating_point(et_line(), 0.01);
  EXPECT_FALSE(op.runaway);
  EXPECT_NEAR(op.current_a, 0.01 / 20e3, 1e-8);
  EXPECT_NEAR(op.peak_temperature_k, 300.0, 0.5);
}

TEST(ElectroThermal, SelfHeatingDroopsTheIv) {
  // With positive TCR, the hot resistance exceeds the cold one, so the
  // measured current falls below the cold-ohmic extrapolation.
  const auto op = th::solve_operating_point(et_line(), 2.0);
  EXPECT_FALSE(op.runaway);
  EXPECT_LT(op.current_a, 2.0 / 20e3);
  EXPECT_GT(op.resistance_ohm, 20e3);
  EXPECT_GT(op.peak_temperature_k, 320.0);
}

TEST(ElectroThermal, SweepIsMonotoneUntilBreakdown) {
  const auto iv = th::sweep_electrothermal_iv(et_line(), 3.0, 31);
  ASSERT_GE(iv.size(), 5u);
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].runaway) break;
    EXPECT_GE(iv[i].current_a, iv[i - 1].current_a - 1e-12);
    EXPECT_GE(iv[i].peak_temperature_k,
              iv[i - 1].peak_temperature_k - 1e-9);
  }
}

TEST(ElectroThermal, BreakdownVoltageBrackets) {
  const double vbd = th::breakdown_voltage(et_line(), 20.0, 873.0);
  ASSERT_GT(vbd, 0.0);
  if (vbd < 20.0) {
    const auto below = th::solve_operating_point(et_line(), 0.95 * vbd);
    EXPECT_LT(below.peak_temperature_k, 873.0);
  }
}

TEST(ElectroThermal, HigherKthSurvivesHigherBias) {
  auto low_k = et_line();
  auto high_k = et_line();
  low_k.thermal_conductivity = 385.0;   // Cu-class
  high_k.thermal_conductivity = 10000.0;
  const double v_lo = th::breakdown_voltage(low_k, 50.0);
  const double v_hi = th::breakdown_voltage(high_k, 50.0);
  EXPECT_GT(v_hi, v_lo);
}

// --- Crosstalk ---

cir::CrosstalkConfig xt_base() {
  cir::CrosstalkConfig cfg;
  cfg.victim = cc::make_paper_mwcnt(10, 2, 20e3).rlc();
  cfg.aggressor = cfg.victim;
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 50e-6;
  cfg.segments = 10;
  return cfg;
}

TEST(Crosstalk, AggressorCouplesNoiseIntoVictim) {
  const auto res = cir::analyze_crosstalk(xt_base(), 1200);
  EXPECT_GT(res.peak_noise_v, 0.01);   // visible noise bump
  EXPECT_LT(res.peak_noise_v, 1.0);    // below full swing
  EXPECT_GT(res.aggressor_delay_s, 0.0);
}

TEST(Crosstalk, NoCouplingNoNoise) {
  auto cfg = xt_base();
  cfg.coupling_cap_per_m = 0.0;
  const auto res = cir::analyze_crosstalk(cfg, 800);
  EXPECT_LT(std::abs(res.peak_noise_v), 1e-6);
}

TEST(Crosstalk, StrongerCouplingMoreNoise) {
  auto weak = xt_base();
  weak.coupling_cap_per_m = 10e-12;
  auto strong = xt_base();
  strong.coupling_cap_per_m = 60e-12;
  EXPECT_GT(cir::analyze_crosstalk(strong, 1200).peak_noise_v,
            cir::analyze_crosstalk(weak, 1200).peak_noise_v);
}

TEST(Crosstalk, LongerCoupledRunMoreNoise) {
  auto short_run = xt_base();
  short_run.length_m = 20e-6;
  auto long_run = xt_base();
  long_run.length_m = 80e-6;
  EXPECT_GT(cir::analyze_crosstalk(long_run, 1200).peak_noise_v,
            cir::analyze_crosstalk(short_run, 1200).peak_noise_v);
}

TEST(ElectroThermal, SubstrateCouplingRaisesBreakdownVoltage) {
  auto adiabatic = et_line();
  auto coupled = et_line();
  adiabatic.substrate_coupling = 0.0;
  coupled.substrate_coupling = 1.0;
  const double v_ad = th::breakdown_voltage(adiabatic, 50.0);
  const double v_cp = th::breakdown_voltage(coupled, 50.0);
  EXPECT_GT(v_cp, v_ad);
}

TEST(Crosstalk, StifferVictimHolderReducesNoise) {
  auto stiff = xt_base();
  stiff.victim_driver_ohm = 500.0;
  auto weak = xt_base();
  weak.victim_driver_ohm = 50e3;
  EXPECT_LT(cir::analyze_crosstalk(stiff, 1200).peak_noise_v,
            cir::analyze_crosstalk(weak, 1200).peak_noise_v);
}

}  // namespace
