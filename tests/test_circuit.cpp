// Tests for the MNA circuit engine: waveforms, DC, MOSFET physics,
// transient integration against analytic references, measurements,
// SPICE round-trip, and the Fig. 11 benchmark builders.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/builders.hpp"
#include "circuit/crosstalk.hpp"
#include "circuit/measure.hpp"
#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "circuit/spice_io.hpp"
#include "circuit/waveform.hpp"
#include "common/units.hpp"
#include "core/mwcnt_line.hpp"
#include "numerics/interp.hpp"

namespace cir = cnti::circuit;

namespace {

TEST(Waveform, PulseShape) {
  cir::PulseWave p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay_s = 1e-9;
  p.rise_s = 1e-9;
  p.fall_s = 1e-9;
  p.width_s = 2e-9;
  p.period_s = 10e-9;
  const cir::Waveform w = p;
  EXPECT_DOUBLE_EQ(cir::waveform_value(w, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(cir::waveform_value(w, 1.5e-9), 0.5);  // mid-rise
  EXPECT_DOUBLE_EQ(cir::waveform_value(w, 3e-9), 1.0);    // plateau
  EXPECT_DOUBLE_EQ(cir::waveform_value(w, 4.5e-9), 0.5);  // mid-fall
  EXPECT_DOUBLE_EQ(cir::waveform_value(w, 6e-9), 0.0);
  EXPECT_NEAR(cir::waveform_value(w, 11.5e-9), 0.5, 1e-9);  // periodic
}

TEST(Waveform, PwlClampsAndInterpolates) {
  cir::PwlWave p;
  p.points = {{0.0, 0.0}, {1e-9, 2.0}, {2e-9, 1.0}};
  const cir::Waveform w = p;
  EXPECT_DOUBLE_EQ(cir::waveform_value(w, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(cir::waveform_value(w, 0.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(cir::waveform_value(w, 1.5e-9), 1.5);
  EXPECT_DOUBLE_EQ(cir::waveform_value(w, 5e-9), 1.0);
}

TEST(Netlist, NodeNamesDeduplicate) {
  cir::Circuit ckt;
  const auto a = ckt.node("a");
  EXPECT_EQ(ckt.node("a"), a);
  EXPECT_EQ(ckt.node("0"), 0);
  EXPECT_EQ(ckt.node("gnd"), 0);
  EXPECT_EQ(ckt.node_count(), 1);
}

TEST(Netlist, MosfetAddsGateCapacitors) {
  cir::Circuit ckt;
  cir::MosfetParams p;
  ckt.add_mosfet("m1", ckt.node("d"), ckt.node("g"), 0, p);
  EXPECT_EQ(ckt.capacitors().size(), 2u);  // cgs + cgd
}

TEST(Netlist, RejectsNonPositiveValues) {
  cir::Circuit ckt;
  EXPECT_THROW(ckt.add_resistor("r", ckt.node("a"), 0, 0.0),
               cnti::PreconditionError);
  EXPECT_THROW(ckt.add_capacitor("c", ckt.node("a"), 0, -1e-15),
               cnti::PreconditionError);
}

TEST(Dc, VoltageDivider) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("v1", in, 0, cir::DcWave{3.0});
  ckt.add_resistor("r1", in, mid, 1e3);
  ckt.add_resistor("r2", mid, 0, 2e3);
  const auto dc = cir::solve_dc(ckt);
  // Tolerance covers the engine's 1e-12 S g_min floor on every node.
  EXPECT_NEAR(dc.node_voltages[mid], 2.0, 1e-8);
  EXPECT_NEAR(dc.vsource_currents[0], -1e-3, 1e-9);  // 1 mA out of v1
}

TEST(Dc, CurrentSourceIntoResistor) {
  cir::Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add_isource("i1", 0, n, cir::DcWave{1e-3});  // 1 mA into n
  ckt.add_resistor("r1", n, 0, 5e3);
  const auto dc = cir::solve_dc(ckt);
  EXPECT_NEAR(dc.node_voltages[n], 5.0, 1e-6);
}

TEST(Dc, InductorIsDcShort) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("v1", in, 0, cir::DcWave{1.0});
  ckt.add_inductor("l1", in, mid, 1e-9);
  ckt.add_resistor("r1", mid, 0, 1e3);
  const auto dc = cir::solve_dc(ckt);
  EXPECT_NEAR(dc.node_voltages[mid], 1.0, 1e-9);
  EXPECT_NEAR(dc.inductor_currents[0], 1e-3, 1e-9);
}

TEST(Dc, SuperpositionHoldsInLinearNetwork) {
  // Two sources driving a resistive bridge: the response to both equals
  // the sum of the responses with each source alone (other one zeroed).
  const auto solve_with = [](double v1, double v2) {
    cir::Circuit ckt;
    const auto a = ckt.node("a");
    const auto b = ckt.node("b");
    const auto mid = ckt.node("mid");
    ckt.add_vsource("v1", a, 0, cir::DcWave{v1});
    ckt.add_vsource("v2", b, 0, cir::DcWave{v2});
    ckt.add_resistor("r1", a, mid, 1e3);
    ckt.add_resistor("r2", b, mid, 2.2e3);
    ckt.add_resistor("r3", mid, 0, 4.7e3);
    const auto dc = cir::solve_dc(ckt);
    return dc.node_voltages[mid];
  };
  const double both = solve_with(1.5, -0.7);
  const double only1 = solve_with(1.5, 0.0);
  const double only2 = solve_with(0.0, -0.7);
  EXPECT_NEAR(both, only1 + only2, 1e-9);
}

TEST(Dc, LinearScalingOfSourceScalesAllVoltages) {
  const auto solve_with = [](double v) {
    cir::Circuit ckt;
    const auto in = ckt.node("in");
    const auto mid = ckt.node("mid");
    ckt.add_vsource("v1", in, 0, cir::DcWave{v});
    ckt.add_resistor("r1", in, mid, 3.3e3);
    ckt.add_resistor("r2", mid, 0, 6.8e3);
    return cir::solve_dc(ckt).node_voltages[mid];
  };
  EXPECT_NEAR(solve_with(2.0), 2.0 * solve_with(1.0), 1e-9);
  EXPECT_NEAR(solve_with(-1.0), -solve_with(1.0), 1e-9);
}

// NMOS square-law sanity through a drain-current measurement circuit.
double nmos_drain_current(double vgs, double vds) {
  cir::Circuit ckt;
  const auto g = ckt.node("g");
  const auto d = ckt.node("d");
  ckt.add_vsource("vg", g, 0, cir::DcWave{vgs});
  ckt.add_vsource("vd", d, 0, cir::DcWave{vds});
  cir::MosfetParams p;  // vt=0.3, kp=450u, W/L=2
  p.cgs_f = 0.0;
  p.cgd_f = 0.0;
  ckt.add_mosfet("m1", d, g, 0, p);
  const auto dc = cir::solve_dc(ckt);
  return -dc.vsource_currents[1];  // current into the drain
}

TEST(Mosfet, CutoffTriodeSaturationRegions) {
  // Cutoff.
  EXPECT_NEAR(nmos_drain_current(0.1, 1.0), 0.0, 1e-9);
  // Saturation: id = 0.5*kp*(W/L)*(vgs-vt)^2*(1+lambda*vds).
  const double beta = 450e-6 * 2.0;
  const double id_sat = 0.5 * beta * 0.49 * (1.0 + 0.1 * 1.0);
  EXPECT_NEAR(nmos_drain_current(1.0, 1.0), id_sat, 1e-8);
  // Triode: vds = 0.1 < vov = 0.7.
  const double id_tri =
      beta * (0.7 * 0.1 - 0.005) * (1.0 + 0.1 * 0.1);
  EXPECT_NEAR(nmos_drain_current(1.0, 0.1), id_tri, 1e-8);
}

TEST(Mosfet, SymmetricConductionWhenSwapped) {
  // vds < 0 must conduct symmetrically (drain/source swap).
  const double i_fwd = nmos_drain_current(1.0, 0.5);
  cir::Circuit ckt;
  const auto g = ckt.node("g");
  const auto d = ckt.node("d");
  ckt.add_vsource("vg", g, 0, cir::DcWave{1.0});
  ckt.add_vsource("vd", d, 0, cir::DcWave{-0.5});
  cir::MosfetParams p;
  p.cgs_f = p.cgd_f = 0.0;
  ckt.add_mosfet("m1", d, g, 0, p);
  const auto dc = cir::solve_dc(ckt);
  const double i_rev = dc.vsource_currents[1];  // current out of drain
  // Now the "source" terminal is the drain node at -0.5 V; with the gate at
  // 1.0 V the effective vgs = 1.5 V, so only the direction is compared.
  EXPECT_GT(i_fwd, 0.0);
  EXPECT_GT(i_rev, 0.0);
}

TEST(Dc, InverterTransferCharacteristic) {
  cir::Technology45nm tech;
  for (double vin : {0.0, 0.5, 1.0}) {
    cir::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    const auto vdd = ckt.node("vdd");
    ckt.add_vsource("vs", vdd, 0, cir::DcWave{tech.vdd_v});
    ckt.add_vsource("vi", in, 0, cir::DcWave{vin});
    cir::add_inverter(ckt, "inv", in, out, vdd, tech);
    const auto dc = cir::solve_dc(ckt);
    if (vin == 0.0) {
      EXPECT_NEAR(dc.node_voltages[out], 1.0, 1e-3);
    }
    if (vin == 1.0) {
      EXPECT_NEAR(dc.node_voltages[out], 0.0, 1e-3);
    }
    if (vin == 0.5) {
      EXPECT_GT(dc.node_voltages[out], 0.1);
      EXPECT_LT(dc.node_voltages[out], 0.9);
    }
  }
}

TEST(Transient, RcChargingMatchesAnalytic) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  cir::PwlWave step;
  step.points = {{0.0, 0.0}, {1e-12, 1.0}};
  ckt.add_vsource("v1", in, 0, step);
  ckt.add_resistor("r1", in, out, 1e3);
  ckt.add_capacitor("c1", out, 0, 1e-12);  // tau = 1 ns
  cir::TransientOptions opt;
  opt.t_stop_s = 5e-9;
  opt.dt_s = 1e-12;
  const auto res = cir::simulate_transient(ckt, opt);
  const auto& t = res.time();
  const auto& v = res.voltage(out);
  for (std::size_t i = 0; i < t.size(); i += 500) {
    const double expected = 1.0 - std::exp(-std::max(0.0, t[i] - 1e-12) /
                                           1e-9);
    EXPECT_NEAR(v[i], expected, 5e-3) << "t = " << t[i];
  }
}

TEST(Transient, IntegratorOrdersOfAccuracy) {
  // Smoothly driven RC (sine source): halving dt must cut the trapezoidal
  // error ~4x (2nd order) and the backward-Euler error ~2x (1st order).
  const auto run = [](cir::Integrator integ, double dt) {
    cir::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    cir::SineWave sine;
    sine.amplitude = 1.0;
    sine.frequency_hz = 1e9;
    ckt.add_vsource("v1", in, 0, sine);
    ckt.add_resistor("r1", in, out, 1e3);
    ckt.add_capacitor("c1", out, 0, 0.2e-12);
    cir::TransientOptions opt;
    opt.t_stop_s = 2e-9;
    opt.dt_s = dt;
    opt.integrator = integ;
    const auto res = cir::simulate_transient(ckt, opt);
    // Sample at a fixed instant (robust to endpoint bookkeeping).
    const cnti::numerics::LinearInterpolator v(res.time(),
                                               res.voltage(out));
    return v(1.9e-9);
  };
  const double ref_trap = run(cir::Integrator::kTrapezoidal, 0.125e-12);
  const double e_trap1 =
      std::abs(run(cir::Integrator::kTrapezoidal, 20e-12) - ref_trap);
  const double e_trap2 =
      std::abs(run(cir::Integrator::kTrapezoidal, 10e-12) - ref_trap);
  EXPECT_GT(e_trap1 / e_trap2, 3.0);
  const double e_be1 =
      std::abs(run(cir::Integrator::kBackwardEuler, 20e-12) - ref_trap);
  const double e_be2 =
      std::abs(run(cir::Integrator::kBackwardEuler, 10e-12) - ref_trap);
  EXPECT_GT(e_be1 / e_be2, 1.6);
  EXPECT_LT(e_be1 / e_be2, 2.6);
  // At equal coarse step the 2nd-order method is more accurate.
  EXPECT_LT(e_trap1, e_be1);
}

TEST(Transient, LcResonance) {
  // Series RLC with tiny R: half-period of ringing = pi sqrt(LC).
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  cir::PwlWave step;
  step.points = {{0.0, 0.0}, {1e-13, 1.0}};
  ckt.add_vsource("v1", in, 0, step);
  ckt.add_resistor("r1", in, mid, 1.0);
  ckt.add_inductor("l1", mid, out, 1e-9);
  ckt.add_capacitor("c1", out, 0, 1e-12);
  cir::TransientOptions opt;
  opt.t_stop_s = 1e-9;
  opt.dt_s = 0.2e-12;
  const auto res = cir::simulate_transient(ckt, opt);
  // Peak of first overshoot at t ~ pi sqrt(LC) ~ 99.3 ps.
  const auto& t = res.time();
  const auto& v = res.voltage(out);
  double t_peak = 0.0, v_peak = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] < 0.2e-9 && v[i] > v_peak) {
      v_peak = v[i];
      t_peak = t[i];
    }
  }
  EXPECT_NEAR(t_peak, M_PI * std::sqrt(1e-9 * 1e-12), 5e-12);
  EXPECT_GT(v_peak, 1.5);  // underdamped overshoot
}

TEST(Transient, ChargeConservationOnCapDivider) {
  // Two series caps from a step: final mid voltage set by the divider.
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  cir::PwlWave step;
  step.points = {{0.0, 0.0}, {1e-12, 1.0}};
  ckt.add_vsource("v1", in, 0, step);
  ckt.add_capacitor("c1", in, mid, 2e-15);
  ckt.add_capacitor("c2", mid, 0, 1e-15);
  cir::TransientOptions opt;
  opt.t_stop_s = 1e-10;
  opt.dt_s = 1e-13;
  const auto res = cir::simulate_transient(ckt, opt);
  EXPECT_NEAR(res.voltage(mid).back(), 2.0 / 3.0, 1e-3);
}

TEST(Transient, InverterDelayPositiveAndFinite) {
  cir::Technology45nm tech;
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  const auto vdd = ckt.node("vdd");
  ckt.add_vsource("vs", vdd, 0, cir::DcWave{tech.vdd_v});
  cir::PulseWave pulse;
  pulse.v2 = tech.vdd_v;
  pulse.delay_s = 20e-12;
  pulse.rise_s = 5e-12;
  pulse.fall_s = 5e-12;
  pulse.width_s = 300e-12;
  pulse.period_s = 600e-12;
  ckt.add_vsource("vi", in, 0, pulse);
  cir::add_inverter(ckt, "inv", in, out, vdd, tech);
  ckt.add_capacitor("cl", out, 0, 1e-15);
  cir::TransientOptions opt;
  opt.t_stop_s = 600e-12;
  opt.dt_s = 0.2e-12;
  const auto res = cir::simulate_transient(ckt, opt);
  const double tp = cir::average_propagation_delay(res, in, out, 0.5,
                                                   100e-12);
  EXPECT_GT(tp, 1e-12);
  EXPECT_LT(tp, 100e-12);
}

TEST(Measure, RiseFallOnSyntheticRamp) {
  std::vector<double> t, v;
  for (int i = 0; i <= 100; ++i) {
    t.push_back(i * 1e-12);
    v.push_back(std::min(1.0, i / 50.0));  // 50 ps full ramp
  }
  const cir::TransientResult res(t, {std::vector<double>(101, 0.0), v});
  // 10-90% of a linear 50 ps ramp = 40 ps.
  EXPECT_NEAR(cir::rise_time(res, 1, 0.0, 1.0), 40e-12, 1e-13);
}

TEST(SpiceIo, NumberSuffixes) {
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("1.5k"), 1500.0);
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("10f"), 10e-15);
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("5"), 5.0);
  EXPECT_THROW(cir::parse_spice_number("abc"), cnti::ParseError);
}

TEST(SpiceIo, ParseAndSimulateDivider) {
  const std::string netlist = R"(divider test
* comment line
V1 in 0 DC 3
R1 in mid 1k
R2 mid 0 2k
.tran 1p 1n
.end
)";
  auto parsed = cir::parse_spice(netlist);
  EXPECT_EQ(parsed.title, "divider test");
  ASSERT_TRUE(parsed.tran.has_value());
  EXPECT_DOUBLE_EQ(parsed.tran->dt_s, 1e-12);
  const auto dc = cir::solve_dc(parsed.circuit);
  EXPECT_NEAR(dc.node_voltages[parsed.circuit.node("mid")], 2.0, 1e-8);
}

TEST(SpiceIo, ParsePulseAndMosfet) {
  const std::string netlist = R"(inverter
VDD vdd 0 DC 1.0
VIN in 0 PULSE(0 1 10p 5p 5p 200p 400p)
M1 out in 0 0 NMOS W=90n L=45n VT=0.3 KP=450u
M2 out in vdd vdd PMOS W=180n L=45n VT=-0.3 KP=225u
.end
)";
  auto parsed = cir::parse_spice(netlist);
  EXPECT_EQ(parsed.circuit.mosfets().size(), 2u);
  EXPECT_TRUE(parsed.circuit.mosfets()[1].params.is_pmos);
  EXPECT_NEAR(parsed.circuit.mosfets()[0].params.width_m, 90e-9, 1e-12);
  const auto dc = cir::solve_dc(parsed.circuit);
  // At t=0 the input is low: output high.
  EXPECT_NEAR(dc.node_voltages[parsed.circuit.node("out")], 1.0, 1e-2);
}

TEST(SpiceIo, WriteParseRoundTrip) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("V1", in, 0, cir::DcWave{1.0});
  ckt.add_resistor("R1", in, out, 2.2e3);
  ckt.add_capacitor("C1", out, 0, 3e-15);
  const std::string text = cir::write_spice(ckt, "round trip");
  auto parsed = cir::parse_spice(text);
  EXPECT_EQ(parsed.circuit.resistors().size(), 1u);
  EXPECT_NEAR(parsed.circuit.resistors()[0].ohms, 2.2e3, 1e-9);
  EXPECT_NEAR(parsed.circuit.capacitors()[0].farads, 3e-15, 1e-20);
  const auto dc = cir::solve_dc(parsed.circuit);
  EXPECT_NEAR(dc.node_voltages[parsed.circuit.node("out")], 1.0, 1e-6);
}

TEST(Builders, DistributedLineConservesTotals) {
  cir::Circuit ckt;
  cnti::core::LineRlc line;
  line.series_resistance_ohm = 10e3;
  line.resistance_per_m = 1e9;
  line.capacitance_per_m = 50e-12;
  cir::add_distributed_line(ckt, "ln", ckt.node("a"), ckt.node("b"), line,
                            100e-6, 10);
  double r_total = 0, c_total = 0;
  for (const auto& r : ckt.resistors()) r_total += r.ohms;
  for (const auto& c : ckt.capacitors()) c_total += c.farads;
  EXPECT_NEAR(r_total, 10e3 + 1e9 * 100e-6, 1.0);
  EXPECT_NEAR(c_total, 50e-12 * 100e-6, 1e-20);
}

TEST(Builders, Fig11DelayMeasurable) {
  cir::Fig11Options opt;
  opt.line = cnti::core::make_paper_mwcnt(10, 2).rlc();
  opt.length_m = 10e-6;
  opt.segments = 10;
  const double tp = cir::measure_fig11_delay(opt, 1500);
  EXPECT_GT(tp, 0.0);
  EXPECT_LT(tp, 1e-7);
}

TEST(Builders, Fig12DopingReducesDelayAt500um) {
  cir::Fig11Options pristine;
  pristine.line = cnti::core::make_paper_mwcnt(10, 2).rlc();
  pristine.length_m = 500e-6;
  pristine.segments = 16;
  cir::Fig11Options doped = pristine;
  doped.line = cnti::core::make_paper_mwcnt(10, 10).rlc();
  const double tp = cir::measure_fig11_delay(pristine, 1500);
  const double td = cir::measure_fig11_delay(doped, 1500);
  ASSERT_GT(tp, 0.0);
  ASSERT_GT(td, 0.0);
  const double ratio = td / tp;
  EXPECT_LT(ratio, 1.0);
  EXPECT_GT(ratio, 0.7);  // paper: ~10% reduction for D = 10 nm
}

// --- Bus settle window and the never-crossed delay sentinel --------------

cir::BusTopology settle_bus_topology() {
  cir::BusTopology topology;
  topology.line = cnti::core::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  topology.coupling_cap_per_m = 30e-12;
  topology.length_m = 100e-6;
  topology.lines = 3;
  topology.segments = 6;
  return topology;
}

TEST(BusCrosstalk, SettleWindowIncludesTheReceiverLoad) {
  const cir::BusTopology topology = settle_bus_topology();
  cir::BusDrive drive;
  drive.receiver_load_f = 200e-15;
  // 12 time constants of the full drive path: driver + contacts + line
  // resistance into line + both-neighbour coupling + *receiver* C, floored
  // at 20 edge times.
  const double r_total = drive.driver_ohm +
                         topology.line.series_resistance_ohm +
                         topology.line.resistance_per_m * topology.length_m;
  const double c_total = (topology.line.capacitance_per_m +
                          2.0 * topology.coupling_cap_per_m) *
                             topology.length_m +
                         drive.receiver_load_f;
  EXPECT_DOUBLE_EQ(
      cir::bus_settle_time_s(topology, drive),
      std::max(20.0 * drive.edge_time_s, 12.0 * r_total * c_total));

  // A heavier receiver strictly widens the window.
  cir::BusDrive light = drive;
  light.receiver_load_f = 0.2e-15;
  EXPECT_GT(cir::bus_settle_time_s(topology, drive),
            cir::bus_settle_time_s(topology, light));
}

TEST(BusCrosstalk, HeavyLoadAggressorSettlesInsideTheWindow) {
  // Regression: with a receiver load far above the line capacitance the
  // old window (line C only) ended long before the aggressor reached
  // vdd/2, so the reported "delay" was the never-crossed sentinel. The
  // load-aware window must always contain the 50% crossing.
  const cir::BusTopology topology = settle_bus_topology();
  cir::BusDrive drive;
  drive.receiver_load_f = 1e-12;  // 1 pF: ~90x the line + coupling C
  const double window = cir::bus_settle_time_s(topology, drive);
  const auto r = cir::analyze_bus_crosstalk(
      cir::make_bus_config(topology, drive), 600);
  ASSERT_TRUE(std::isfinite(r.aggressor_delay_s));
  EXPECT_GT(r.aggressor_delay_s, 0.0);
  EXPECT_LT(r.aggressor_delay_s, window);
}

TEST(BusCrosstalk, NeverCrossedDelayIsQuietNaNNotNegative) {
  // A source impedance far above the MNA g_min leakage floor divides the
  // far-end asymptote to a few percent of vdd — the 50% level is truly
  // never reached, and the result must carry a quiet NaN, not -1.
  const cir::BusTopology topology = settle_bus_topology();
  cir::BusDrive drive;
  drive.driver_ohm = 1e12;
  const auto r = cir::analyze_bus_crosstalk(
      cir::make_bus_config(topology, drive), 300);
  EXPECT_TRUE(std::isnan(r.aggressor_delay_s));
  // The peak-noise fields stay valid even when the delay does not.
  EXPECT_TRUE(std::isfinite(r.peak_noise_v));
  EXPECT_GE(r.worst_victim, 0);
}

}  // namespace
