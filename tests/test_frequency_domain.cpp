// Tests for AC analysis, DC sweeps, DOS and the Raman quality metric —
// the second-wave analysis features built on the core engines.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "atomistic/dos.hpp"
#include "charz/raman.hpp"
#include "circuit/ac.hpp"
#include "circuit/builders.hpp"
#include "circuit/dc_sweep.hpp"
#include "core/mwcnt_line.hpp"

namespace cir = cnti::circuit;
namespace ca = cnti::atomistic;
namespace cz = cnti::charz;
namespace cc = cnti::core;
namespace cp = cnti::process;

namespace {

// --- AC analysis ---

cir::Circuit rc_lowpass(cir::NodeId* out) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  *out = ckt.node("out");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  ckt.add_resistor("r1", in, *out, 1e3);
  ckt.add_capacitor("c1", *out, 0, 1e-12);  // f3db = 159 MHz
  return ckt;
}

TEST(Ac, RcLowPassPoleAtOneOverTwoPiRc) {
  cir::NodeId out = 0;
  const auto ckt = rc_lowpass(&out);
  const auto freqs = cir::log_frequency_grid(1e6, 1e11, 40);
  const auto res = cir::ac_analysis(ckt, "vin", out, freqs);
  // Near-DC gain 1 (first grid point is 1 MHz, so |H| ~ 0.99998).
  EXPECT_NEAR(std::abs(res.transfer.front()), 1.0, 1e-4);
  // -3 dB at 1/(2 pi R C) = 159.2 MHz.
  EXPECT_NEAR(cir::bandwidth_3db(res), 1.0 / (2.0 * M_PI * 1e3 * 1e-12),
              0.02 * 159.2e6);
  // -20 dB/decade rolloff well past the pole.
  const std::size_t n = res.transfer.size();
  const double slope_db =
      res.magnitude_db(n - 1) - res.magnitude_db(n - 5);
  const double decades = std::log10(res.frequency_hz[n - 1] /
                                    res.frequency_hz[n - 5]);
  EXPECT_NEAR(slope_db / decades, -20.0, 1.0);
  // Phase approaches -90 degrees.
  EXPECT_NEAR(res.phase_deg(n - 1), -90.0, 3.0);
}

TEST(Ac, SeriesRlcResonance) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  ckt.add_resistor("r1", in, mid, 10.0);
  ckt.add_inductor("l1", mid, out, 1e-9);
  ckt.add_capacitor("c1", out, 0, 1e-12);
  // f0 = 1/(2 pi sqrt(LC)) ~ 5.03 GHz; peak |H| = Q = sqrt(L/C)/R ~ 3.16.
  const auto freqs = cir::log_frequency_grid(1e8, 1e11, 60);
  const auto res = cir::ac_analysis(ckt, "vin", out, freqs);
  double peak = 0.0, f_peak = 0.0;
  for (std::size_t i = 0; i < res.transfer.size(); ++i) {
    if (std::abs(res.transfer[i]) > peak) {
      peak = std::abs(res.transfer[i]);
      f_peak = res.frequency_hz[i];
    }
  }
  EXPECT_NEAR(f_peak, 5.03e9, 0.25e9);
  EXPECT_NEAR(peak, std::sqrt(1e-9 / 1e-12) / 10.0, 0.3);
}

TEST(Ac, InputImpedanceOfDivider) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  ckt.add_resistor("r1", in, mid, 1e3);
  ckt.add_resistor("r2", mid, 0, 2e3);
  const auto z = cir::input_impedance(ckt, "vin", 1e6);
  EXPECT_NEAR(z.real(), 3e3, 1.0);
  EXPECT_NEAR(z.imag(), 0.0, 1.0);
}

TEST(Ac, CntLineBandwidthImprovesWithDoping) {
  // Distributed MWCNT line driven by a source: the doped line (lower R)
  // has a higher 3 dB bandwidth.
  const auto bandwidth_of = [](double nc) {
    cir::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
    cir::add_distributed_line(ckt, "ln", in, out,
                              cc::make_paper_mwcnt(10, nc, 100e3).rlc(),
                              200e-6, 12);
    ckt.add_capacitor("cl", out, 0, 1e-15);
    const auto freqs = cir::log_frequency_grid(1e6, 1e12, 20);
    return cir::bandwidth_3db(cir::ac_analysis(ckt, "vin", out, freqs));
  };
  const double bw2 = bandwidth_of(2);
  const double bw10 = bandwidth_of(10);
  ASSERT_GT(bw2, 0.0);
  EXPECT_GT(bw10, bw2);
}

TEST(Ac, KineticInductanceShapesHighFrequencyResponse) {
  // Same RC line with and without the CNT kinetic inductance: the
  // response must differ at high frequency (where wL ~ R_segment).
  const auto line = cc::make_paper_mwcnt(10, 2, 0.0).rlc();
  const auto build = [&](bool with_l) {
    cir::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
    const int segs = 10;
    const auto parts = cc::discretize_line(line, 10e-6, segs);
    cir::NodeId prev = in;
    for (int s = 0; s < segs; ++s) {
      const auto mid = ckt.node("m" + std::to_string(s));
      const auto nxt =
          (s == segs - 1) ? out : ckt.node("n" + std::to_string(s));
      ckt.add_resistor("r" + std::to_string(s), prev, mid,
                       parts[static_cast<std::size_t>(s)].resistance_ohm);
      if (with_l) {
        ckt.add_inductor("l" + std::to_string(s), mid, nxt,
                         line.inductance_per_m * 10e-6 / segs);
      } else {
        ckt.add_resistor("rl" + std::to_string(s), mid, nxt, 1e-3);
      }
      ckt.add_capacitor("c" + std::to_string(s), nxt, 0,
                        parts[static_cast<std::size_t>(s)].capacitance_f);
      prev = nxt;
    }
    return ckt;
  };
  auto rc = build(false);
  auto rlc = build(true);
  const std::vector<double> freqs = {1e9, 1e11, 5e11};
  const auto h_rc = cir::ac_analysis(rc, "vin", rc.node("out"), freqs);
  const auto h_rlc = cir::ac_analysis(rlc, "vin", rlc.node("out"), freqs);
  // Low frequency: identical.
  EXPECT_NEAR(std::abs(h_rc.transfer[0]), std::abs(h_rlc.transfer[0]),
              1e-3);
  // High frequency: the kinetic inductance reshapes the response (the
  // ladder turns into a transmission line with inductive peaking above
  // its LC resonance) — require a clear deviation from the pure-RC case.
  const double ratio = std::abs(h_rc.transfer[2]) /
                       (std::abs(h_rlc.transfer[2]) + 1e-30);
  EXPECT_TRUE(ratio > 1.3 || ratio < 0.77) << "ratio = " << ratio;
}

TEST(Ac, NearDcMatchesResistiveDivider) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  ckt.add_resistor("r1", in, mid, 1e3);
  ckt.add_resistor("r2", mid, 0, 2e3);
  const auto res = cir::ac_analysis(ckt, "vin", mid, {1.0});
  EXPECT_NEAR(std::abs(res.transfer[0]), 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(res.phase_deg(0), 0.0, 1e-3);
}

TEST(Ac, HeavierLoadLowersBandwidthInversely) {
  const auto bw_with_cap = [](double c) {
    cir::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
    ckt.add_resistor("r1", in, out, 1e3);
    ckt.add_capacitor("c1", out, 0, c);
    const auto freqs = cir::log_frequency_grid(1e6, 1e11, 80);
    return cir::bandwidth_3db(cir::ac_analysis(ckt, "vin", out, freqs));
  };
  const double bw1 = bw_with_cap(1e-12);
  const double bw4 = bw_with_cap(4e-12);
  EXPECT_NEAR(bw1 / bw4, 4.0, 0.3);
}

TEST(Ac, LogGridHitsEndpointsExactlyAndStaysStrictlyIncreasing) {
  const auto grid = cir::log_frequency_grid(1e6, 1e12, 20);
  EXPECT_DOUBLE_EQ(grid.front(), 1e6);
  EXPECT_DOUBLE_EQ(grid.back(), 1e12);  // exact, no pow() roundoff
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LT(grid[i - 1], grid[i]);
  }
  // 6 decades at 20 points/decade: 120 intervals, 121 points.
  EXPECT_EQ(grid.size(), 121u);
}

TEST(Ac, LogGridDegenerateAndNarrowRanges) {
  // Equal endpoints: a single-point grid, not a throw.
  const auto single = cir::log_frequency_grid(1e9, 1e9, 10);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 1e9);
  // A sub-point fraction of a decade still spans both endpoints.
  const auto narrow = cir::log_frequency_grid(1e9, 1.001e9, 10);
  ASSERT_GE(narrow.size(), 2u);
  EXPECT_DOUBLE_EQ(narrow.front(), 1e9);
  EXPECT_DOUBLE_EQ(narrow.back(), 1.001e9);
  for (std::size_t i = 1; i < narrow.size(); ++i) {
    EXPECT_LT(narrow[i - 1], narrow[i]);
  }
}

TEST(Ac, LogGridRejectsInvalidRanges) {
  EXPECT_THROW(cir::log_frequency_grid(0.0, 1e9), cnti::PreconditionError);
  EXPECT_THROW(cir::log_frequency_grid(-1.0, 1e9), cnti::PreconditionError);
  EXPECT_THROW(cir::log_frequency_grid(1e9, 1e6), cnti::PreconditionError);
  EXPECT_THROW(cir::log_frequency_grid(1e6, 1e9, 0),
               cnti::PreconditionError);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(cir::log_frequency_grid(1e6, inf), cnti::PreconditionError);
  EXPECT_THROW(cir::log_frequency_grid(1e6, std::nan("")),
               cnti::PreconditionError);
}

TEST(Ac, ZeroTransferReadsMinusInfinityDb) {
  // Observing ground gives an identically-zero transfer: magnitude_db must
  // report -inf instead of a NaN or a log-domain surprise.
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  ckt.add_resistor("r1", in, 0, 1e3);
  const auto res = cir::ac_analysis(ckt, "vin", 0, {1e6, 1e9});
  for (std::size_t i = 0; i < res.transfer.size(); ++i) {
    EXPECT_EQ(std::abs(res.transfer[i]), 0.0);
    EXPECT_TRUE(std::isinf(res.magnitude_db(i)));
    EXPECT_LT(res.magnitude_db(i), 0.0);
    EXPECT_FALSE(std::isnan(res.phase_deg(i)));
  }
}

TEST(Ac, RejectsNonlinearCircuits) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add_vsource("vin", in, 0, cir::DcWave{0.0});
  ckt.add_mosfet("m1", ckt.node("d"), in, 0, cir::MosfetParams{});
  EXPECT_THROW(cir::ac_analysis(ckt, "vin", in, {1e9}),
               cnti::PreconditionError);
}

// --- DC sweep ---

TEST(DcSweep, InverterVtc) {
  cir::Technology45nm tech;
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  const auto vdd = ckt.node("vdd");
  ckt.add_vsource("vs", vdd, 0, cir::DcWave{tech.vdd_v});
  ckt.add_vsource("vi", in, 0, cir::DcWave{0.0});
  cir::add_inverter(ckt, "inv", in, out, vdd, tech);
  const auto vtc = cir::dc_sweep(ckt, "vi", 0.0, 1.0, 51, out);
  // Monotone falling.
  for (std::size_t i = 1; i < vtc.output_v.size(); ++i) {
    EXPECT_LE(vtc.output_v[i], vtc.output_v[i - 1] + 1e-9);
  }
  // Rails at the ends, gain > 1 somewhere (restoring logic).
  EXPECT_NEAR(vtc.output_v.front(), tech.vdd_v, 1e-2);
  EXPECT_NEAR(vtc.output_v.back(), 0.0, 1e-2);
  EXPECT_GT(vtc.max_gain(), 1.0);
  // Switching threshold near mid-rail.
  const double vm = vtc.input_at_output(tech.vdd_v / 2.0);
  EXPECT_GT(vm, 0.3);
  EXPECT_LT(vm, 0.7);
}

TEST(DcSweep, RequiresDcSource) {
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add_vsource("vp", in, 0, cir::PulseWave{});
  ckt.add_resistor("r", in, 0, 1e3);
  EXPECT_THROW(cir::dc_sweep(ckt, "vp", 0, 1, 5, in),
               cnti::PreconditionError);
}

// --- DOS ---

TEST(Dos, MetallicTubeHasFiniteDosAtFermi) {
  const ca::BandStructure bands(ca::Chirality(7, 7));
  const auto dos = ca::compute_dos(bands, 2.0, 400, 8001);
  EXPECT_GT(dos.at(0.0), 0.0);
  // Van Hove peak near the first subband edge (~1.17 eV) towers over the
  // metallic plateau.
  EXPECT_GT(dos.at(1.17), 3.0 * dos.at(0.5));
}

TEST(Dos, SemiconductingTubeHasGap) {
  const ca::BandStructure bands(ca::Chirality(10, 0));
  const auto dos = ca::compute_dos(bands, 2.0, 400, 8001);
  EXPECT_NEAR(dos.at(0.0), 0.0, 1e-9);   // inside the gap
  EXPECT_GT(dos.at(0.6), 0.0);           // beyond the band edge
}

TEST(Dos, ElectronHoleSymmetric) {
  const ca::BandStructure bands(ca::Chirality(9, 0));
  const auto dos = ca::compute_dos(bands, 2.5, 500, 8001);
  for (double e : {0.5, 1.0, 1.8}) {
    EXPECT_NEAR(dos.at(e), dos.at(-e), 0.15 * dos.at(e) + 1e-6);
  }
}

TEST(Dos, ChargeTransferGrowsWithFermiShift) {
  const ca::BandStructure bands(ca::Chirality(7, 7));
  const auto dos = ca::compute_dos(bands, 2.0, 400, 8001);
  const double q1 = ca::transferred_charge_per_cell(dos, -0.3);
  const double q2 = ca::transferred_charge_per_cell(dos, -0.6);
  EXPECT_GT(q1, 0.0);
  EXPECT_GT(q2, q1);
}

// --- Raman ---

TEST(Raman, CleanerGrowthLowersDOverG) {
  cp::GrowthRecipe cold;
  cold.temperature_c = 400.0;
  cp::GrowthRecipe hot = cold;
  hot.temperature_c = 650.0;
  const auto sig_cold = cz::predict_raman(cp::evaluate_recipe(cold));
  const auto sig_hot = cz::predict_raman(cp::evaluate_recipe(hot));
  EXPECT_GT(sig_cold.d_over_g, sig_hot.d_over_g);
  EXPECT_GT(sig_cold.g_width_cm1, sig_hot.g_width_cm1);
}

TEST(Raman, RbmTracksDiameter) {
  cp::GrowthRecipe thin;
  thin.catalyst_thickness_nm = 0.5;  // ~3.8 nm tubes
  cp::GrowthRecipe thick = thin;
  thick.catalyst_thickness_nm = 2.0;  // ~15 nm tubes
  const auto sig_thin = cz::predict_raman(cp::evaluate_recipe(thin));
  const auto sig_thick = cz::predict_raman(cp::evaluate_recipe(thick));
  EXPECT_GT(sig_thin.rbm_cm1, sig_thick.rbm_cm1);
}

TEST(Raman, MetrologyRoundTrip) {
  cp::GrowthRecipe recipe;
  const auto quality = cp::evaluate_recipe(recipe);
  const auto sig = cz::predict_raman(quality);
  EXPECT_NEAR(cz::defect_spacing_from_raman(sig.d_over_g),
              quality.defect_spacing_um,
              1e-9 * quality.defect_spacing_um);
}

}  // namespace
