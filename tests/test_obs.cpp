// Observability spine: registry semantics (shard folding across thread
// exit, histogram merge exactness, kind collisions), trace well-formedness
// under the service's strict JSON reader, wire round-trips, and the load-
// bearing contract of the whole layer — tracing is bit-effect-free, pinned
// by running the byte-identity suites at several thread counts with a
// TraceSession live.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "scenario/engine.hpp"
#include "scenario/report.hpp"
#include "scenario/statistical.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace {

namespace obs = cnti::obs;
namespace sc = cnti::scenario;

// ---------------------------------------------------------------------------
// Registry: counters, gauges, histograms.

TEST(Metrics, CounterFoldsLiveShardsAndRetiredThreads) {
  const obs::Counter c = obs::counter("cnti.test.fold_counter");
  const std::uint64_t before = c.value();

  c.add(5);  // this thread's live shard
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  // The workers have exited: their shards were folded into the retired
  // accumulator. The snapshot must still see every add exactly once.
  EXPECT_EQ(c.value(), before + 5 + 4 * 1000);

  // Same name returns a handle onto the same cell.
  const obs::Counter again = obs::counter("cnti.test.fold_counter");
  again.add(1);
  EXPECT_EQ(c.value(), before + 5 + 4 * 1000 + 1);
}

TEST(Metrics, NameToKindBindingIsExclusive) {
  (void)obs::counter("cnti.test.kind_bound");
  EXPECT_THROW((void)obs::gauge("cnti.test.kind_bound"),
               cnti::PreconditionError);
  EXPECT_THROW((void)obs::histogram("cnti.test.kind_bound"),
               cnti::PreconditionError);
}

TEST(Metrics, GaugeIsLastWriteWinsAndBitExact) {
  const obs::Gauge g = obs::gauge("cnti.test.gauge");
  g.set(0.1 + 0.2);  // a value with no short decimal form
  EXPECT_EQ(g.value(), 0.1 + 0.2);
  g.set(-3.25);
  EXPECT_EQ(g.value(), -3.25);
}

TEST(Metrics, HistogramBucketsFollowBitWidth) {
  const obs::Histogram h = obs::histogram("cnti.test.hist_buckets");
  h.record_ns(0);    // bucket 0
  h.record_ns(1);    // bucket 1: [1, 2)
  h.record_ns(2);    // bucket 2: [2, 4)
  h.record_ns(3);    // bucket 2
  h.record_ns(~0ull);  // clamps into the last bucket

  const auto snap = obs::metrics_snapshot();
  const auto& hs = snap.histograms.at("cnti.test.hist_buckets");
  EXPECT_EQ(hs.count, 5u);
  EXPECT_EQ(hs.sum_ns, 0u + 1 + 2 + 3 + ~0ull);
  EXPECT_EQ(hs.buckets[0], 1u);
  EXPECT_EQ(hs.buckets[1], 1u);
  EXPECT_EQ(hs.buckets[2], 2u);
  EXPECT_EQ(hs.buckets[obs::kHistogramBuckets - 1], 1u);
}

TEST(Metrics, ShardedHistogramMergeEqualsSinglePass) {
  // The same multiset of samples recorded (a) split across worker threads
  // and (b) sequentially on one thread must fold to identical snapshots —
  // merge is an element-wise add, not an approximation.
  const obs::Histogram sharded = obs::histogram("cnti.test.hist_sharded");
  const obs::Histogram single = obs::histogram("cnti.test.hist_single");

  std::vector<std::uint64_t> samples;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    samples.push_back(i * i * 2654435761u % (1ull << 40));
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 5; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < samples.size();
           i += 5) {
        sharded.record_ns(samples[i]);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const std::uint64_t s : samples) single.record_ns(s);

  const auto snap = obs::metrics_snapshot();
  const auto& a = snap.histograms.at("cnti.test.hist_sharded");
  const auto& b = snap.histograms.at("cnti.test.hist_single");
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum_ns, b.sum_ns);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(Metrics, InternedNamesAreStableAndDeduplicated) {
  const char* a = obs::intern_name("stage.test-intern");
  const std::string copy = "stage.test-intern";  // different backing bytes
  const char* b = obs::intern_name(copy);
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "stage.test-intern");
}

// ---------------------------------------------------------------------------
// Wire formats: strict-JSON round-trip and Prometheus text.

TEST(Metrics, JsonRoundTripsThroughTheStrictParser) {
  const obs::Counter c = obs::counter("cnti.test.wire_counter");
  c.add(42);
  obs::gauge("cnti.test.wire_gauge").set(2.5);
  const obs::Histogram h = obs::histogram("cnti.test.wire_hist");
  h.record_ns(100);
  h.record_ns(100000);

  const obs::MetricsSnapshot snap = obs::metrics_snapshot();
  std::ostringstream out;
  obs::write_metrics_json(out, snap);

  // The writer's output must satisfy the service's strict reader
  // (duplicate keys and malformed nesting are hard errors there).
  const auto parsed = cnti::service::parse_json(out.str());
  const obs::MetricsSnapshot back =
      cnti::service::metrics_snapshot_from_json(parsed);

  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  ASSERT_EQ(back.histograms.size(), snap.histograms.size());
  for (const auto& [name, hs] : snap.histograms) {
    const auto& bs = back.histograms.at(name);
    EXPECT_EQ(bs.count, hs.count) << name;
    EXPECT_EQ(bs.sum_ns, hs.sum_ns) << name;
    EXPECT_EQ(bs.buckets, hs.buckets) << name;
  }
}

TEST(Metrics, PrometheusRenderingIsCumulativeAndComplete) {
  obs::counter("cnti.test.prom_counter").add(3);
  const obs::Histogram h = obs::histogram("cnti.test.prom_hist");
  h.record_ns(10);
  h.record_ns(10);
  h.record_ns(1000000);

  std::ostringstream out;
  obs::write_metrics_prometheus(out, obs::metrics_snapshot());
  const std::string text = out.str();

  // Dots become underscores; the histogram renders cumulative buckets
  // ending in +Inf plus _sum/_count.
  EXPECT_NE(text.find("cnti_test_prom_hist_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("cnti_test_prom_hist_count"), std::string::npos);
  EXPECT_NE(text.find("cnti_test_prom_hist_sum"), std::string::npos);
  EXPECT_NE(text.find("cnti_test_prom_counter 3"), std::string::npos);
  EXPECT_EQ(text.find("cnti.test"), std::string::npos)
      << "metric names must be sanitized for Prometheus";
}

// ---------------------------------------------------------------------------
// Spans and trace sessions.

TEST(Trace, DisabledSpanNeverReadsTheClock) {
  if (obs::timing_active()) {
    GTEST_SKIP() << "a trace/timing session is live (CNTI_TRACE set?)";
  }
  EXPECT_EQ(obs::span_start(), 0u);
}

TEST(Trace, SessionCapturesSpansAcrossThreadsSortedByStart) {
  obs::TraceSession session;
  {
    obs::ObsSpan outer("test.outer", "engine");
    std::thread worker([] { obs::ObsSpan inner("test.worker", "pool"); });
    worker.join();
  }
  const std::vector<obs::TraceEvent> events = session.stop();

  ASSERT_GE(events.size(), 2u);
  bool saw_outer = false, saw_worker = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_NE(events[i].name, nullptr);
    ASSERT_NE(events[i].tier, nullptr);
    if (i > 0) {
      EXPECT_GE(events[i].t0_ns, events[i - 1].t0_ns);
    }
    if (std::string(events[i].name) == "test.outer") saw_outer = true;
    if (std::string(events[i].name) == "test.worker") saw_worker = true;
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_worker) << "rings retired by exited threads must drain";

  // stop() is idempotent and the session released its enable reference.
  EXPECT_TRUE(session.stop().empty());
}

TEST(Trace, JsonOutputSatisfiesTheStrictReader) {
  obs::TraceSession session;
  {
    obs::ObsSpan a("test.alpha", "engine");
    obs::ObsSpan b(obs::intern_name("stage.test\"quoted\""), "cache");
  }
  std::ostringstream out;
  session.write_json(out, /*include_metrics=*/true);

  const auto root = cnti::service::parse_json(out.str());
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  const auto& events = root.at("traceEvents").as_array();
  ASSERT_GE(events.size(), 2u);
  bool saw_escaped = false;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_EQ(ev.at("pid").as_number(), 1.0);
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
    if (ev.at("name").as_string() == "stage.test\"quoted\"") {
      saw_escaped = true;
    }
  }
  EXPECT_TRUE(saw_escaped) << "span names must be JSON-escaped, not dropped";
  // The embedded metrics side-car parses with the protocol inverse too.
  (void)cnti::service::metrics_snapshot_from_json(root.at("metrics"));
}

TEST(Trace, TimingOnlyModeFeedsHistogramsWithoutARing) {
  if (obs::trace_active()) GTEST_SKIP() << "external trace session is live";
  const obs::Histogram h = obs::histogram("cnti.test.timing_only");
  const auto count_of = [] {
    return obs::metrics_snapshot()
        .histograms.at("cnti.test.timing_only")
        .count;
  };
  obs::set_timing_enabled(true);
  {
    obs::ObsSpan span("test.timing", "engine", h);
  }
  obs::set_timing_enabled(false);
  const std::uint64_t after = count_of();
  EXPECT_GE(after, 1u);
  {
    obs::ObsSpan span("test.timing", "engine", h);  // timing now off
  }
  EXPECT_EQ(count_of(), after);
}

// ---------------------------------------------------------------------------
// The load-bearing contract: tracing is bit-effect-free.

sc::Scenario small_scenario() {
  sc::Scenario s;
  s.label = "obs-identity";
  s.tech.outer_diameter_nm = 10.0;
  s.tech.dopant_concentration = 1.0;
  s.tech.contact_resistance_kohm = 20.0;
  s.workload.length_um = 25.0;
  s.workload.driver_resistance_kohm = 5.0;
  s.workload.load_capacitance_ff = 0.2;
  s.workload.bus_lines = 4;
  s.workload.bus_segments = 8;
  s.analysis.time_steps = 200;
  return s;
}

std::vector<sc::Scenario> identity_batch() {
  std::vector<sc::Scenario> batch;
  for (int i = 0; i < 6; ++i) {
    sc::Scenario s = small_scenario();
    s.label = "obs-identity/" + std::to_string(i);
    s.workload.length_um = 20.0 + 5.0 * i;
    s.analysis.noise = (i % 2 == 0);
    s.analysis.noise_model = sc::NoiseModel::kReducedOrder;
    s.analysis.thermal = (i % 3 == 0);
    batch.push_back(std::move(s));
  }
  return batch;
}

std::string batch_bytes(const sc::ScenarioEngine& engine,
                        const std::vector<sc::Scenario>& batch) {
  std::ostringstream out;
  sc::write_report_json(out, engine.run_batch(batch), nullptr);
  return out.str();
}

std::string study_bytes(const sc::ScenarioEngine& engine,
                        const sc::Scenario& s) {
  std::ostringstream out;
  sc::write_study_json(out, sc::reduce_shards({engine.run_statistical(s)}));
  return out.str();
}

class TracedByteIdentity : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Obs, TracedByteIdentity, ::testing::Values(1, 2, 5));

TEST_P(TracedByteIdentity, BatchReportBytesUnchangedUnderTracing) {
  sc::EngineOptions opt;
  opt.sweep.threads = GetParam();
  const auto batch = identity_batch();
  const std::string baseline =
      batch_bytes(sc::ScenarioEngine(opt), batch);

  obs::TraceSession session;
  const std::string traced = batch_bytes(sc::ScenarioEngine(opt), batch);
  const auto events = session.stop();
  EXPECT_EQ(traced, baseline);
  EXPECT_FALSE(events.empty()) << "the traced leg must actually trace";
}

TEST_P(TracedByteIdentity, StatisticalStudyBytesUnchangedUnderTracing) {
  sc::Scenario s = small_scenario();
  s.analysis.delay = false;
  s.analysis.noise = true;
  s.variability.samples = 24;
  s.variability.resistance_span = 0.15;
  s.variability.capacitance_span = 0.10;
  s.variability.coupling_span = 0.20;

  sc::EngineOptions opt;
  opt.sweep.threads = GetParam();
  const std::string baseline = study_bytes(sc::ScenarioEngine(opt), s);

  obs::TraceSession session;
  const std::string traced = study_bytes(sc::ScenarioEngine(opt), s);
  const auto events = session.stop();
  EXPECT_EQ(traced, baseline);
  EXPECT_FALSE(events.empty());
}

}  // namespace
