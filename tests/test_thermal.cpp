// Tests for the thermal module: 1-D electro-thermal solver vs. analytic
// reference, CNT-vs-Cu self-heating advantage, ampacity, SThM metrology
// round-trip, and EM reliability models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/constants.hpp"
#include "thermal/em.hpp"
#include "thermal/heat1d.hpp"
#include "numerics/stats.hpp"
#include "thermal/sthm.hpp"

namespace th = cnti::thermal;

namespace {

th::LineThermalSpec cnt_line() {
  th::LineThermalSpec s;
  s.length_m = 1e-6;
  s.cross_section_m2 = M_PI * 7.5e-9 * 7.5e-9 / 4.0;
  s.thermal_conductivity = 3000.0;
  s.resistance_per_m = 20e3 / 1e-6;  // 20 kOhm over 1 um
  return s;
}

TEST(Heat1d, MatchesAnalyticParabolicProfile) {
  const auto spec = cnt_line();
  const double i = 5e-6;
  const auto sol = th::solve_self_heating(spec, i, 401);
  EXPECT_FALSE(sol.thermal_runaway);
  EXPECT_NEAR(sol.peak_rise_k, th::analytic_peak_rise(spec, i),
              0.01 * th::analytic_peak_rise(spec, i) + 1e-6);
  // Peak sits at the midpoint; ends stay at ambient.
  EXPECT_NEAR(sol.temperature_k.front(), spec.ambient_k, 1e-9);
  EXPECT_NEAR(sol.temperature_k.back(), spec.ambient_k, 1e-9);
  const std::size_t mid = sol.temperature_k.size() / 2;
  EXPECT_NEAR(sol.temperature_k[mid], sol.peak_temperature_k, 1e-6);
}

TEST(Heat1d, SubstrateCouplingCoolsTheLine) {
  auto spec = cnt_line();
  const auto adiabatic = th::solve_self_heating(spec, 5e-6);
  spec.substrate_coupling = 1.0;  // W/(m K) through the dielectric
  const auto coupled = th::solve_self_heating(spec, 5e-6);
  EXPECT_LT(coupled.peak_rise_k, adiabatic.peak_rise_k);
}

TEST(Heat1d, CntRunsCoolerThanCuAtSameLoad) {
  // Same geometry and electrical resistance; only k differs
  // (3000 vs 385 W/mK — the paper's thermal advantage).
  auto cnt = cnt_line();
  auto cu = cnt;
  cu.thermal_conductivity = cnti::cuconst::kThermalConductivity;
  const double i = 10e-6;
  const auto r_cnt = th::solve_self_heating(cnt, i);
  const auto r_cu = th::solve_self_heating(cu, i);
  EXPECT_LT(r_cnt.peak_rise_k, r_cu.peak_rise_k);
  EXPECT_NEAR(r_cu.peak_rise_k / r_cnt.peak_rise_k, 3000.0 / 385.0, 0.5);
}

TEST(Heat1d, TcrFeedbackRaisesTemperature) {
  auto spec = cnt_line();
  const auto cold = th::solve_self_heating(spec, 20e-6);
  spec.resistance_tcr = 2e-3;
  const auto hot = th::solve_self_heating(spec, 20e-6);
  EXPECT_GT(hot.peak_rise_k, cold.peak_rise_k);
  EXPECT_GT(hot.hot_resistance_ohm, cold.hot_resistance_ohm);
}

TEST(Heat1d, AmpacityInvertsTheSolver) {
  const auto spec = cnt_line();
  const double i_max = th::thermal_ampacity(spec, spec.ambient_k + 80.0);
  const auto check = th::solve_self_heating(spec, i_max);
  EXPECT_NEAR(check.peak_temperature_k, spec.ambient_k + 80.0, 0.5);
}

TEST(Heat1d, AnalyticPeakRiseQuadraticInCurrent) {
  // Joule heating ~ I^2 R: without TCR feedback the analytic peak rise is
  // exactly quadratic in the drive current.
  const auto spec = cnt_line();
  const double r1 = th::analytic_peak_rise(spec, 2e-6);
  const double r2 = th::analytic_peak_rise(spec, 4e-6);
  EXPECT_NEAR(r2, 4.0 * r1, 1e-9 * r2);
}

TEST(Heat1d, AmpacityMonotoneInAllowedRise) {
  const auto spec = cnt_line();
  const double i40 = th::thermal_ampacity(spec, spec.ambient_k + 40.0);
  const double i80 = th::thermal_ampacity(spec, spec.ambient_k + 80.0);
  const double i160 = th::thermal_ampacity(spec, spec.ambient_k + 160.0);
  EXPECT_LT(i40, i80);
  EXPECT_LT(i80, i160);
}

TEST(Heat1d, RejectsBadInput) {
  th::LineThermalSpec bad = cnt_line();
  bad.thermal_conductivity = -1.0;
  EXPECT_THROW(th::solve_self_heating(bad, 1e-6), cnti::PreconditionError);
}

TEST(Sthm, ProbeBlursButPreservesPeak) {
  const auto spec = cnt_line();
  const auto truth = th::solve_self_heating(spec, 10e-6, 401);
  cnti::numerics::Rng rng(3);
  th::SthmProbe probe;
  probe.temperature_noise_k = 0.0;  // isolate the blur
  probe.spatial_resolution_m = 20e-9;
  const auto scan = th::simulate_sthm_scan(truth, probe, rng);
  double scan_peak = 0.0;
  for (double t : scan.temperature_k) scan_peak = std::max(scan_peak, t);
  EXPECT_LT(scan_peak, truth.peak_temperature_k + 1e-9);
  EXPECT_GT(scan_peak, truth.peak_temperature_k -
                           0.1 * truth.peak_rise_k);
}

TEST(Sthm, ThermalConductivityRoundTrip) {
  // Simulate the measurement chain and re-extract k within ~15%.
  const auto spec = cnt_line();
  const double i = 10e-6;
  const auto truth = th::solve_self_heating(spec, i, 401);
  cnti::numerics::Rng rng(11);
  th::SthmProbe probe;
  probe.spatial_resolution_m = 10e-9;
  probe.temperature_noise_k = 0.02;
  const auto scan = th::simulate_sthm_scan(truth, probe, rng);
  const double k = th::extract_thermal_conductivity(scan, spec, i);
  EXPECT_NEAR(k, spec.thermal_conductivity,
              0.15 * spec.thermal_conductivity);
}

TEST(Em, BlackScalingLaws) {
  th::BlackParams p;
  // n = 2: doubling j quarters the lifetime.
  const double t1 = th::black_mttf_s(1e10, 378.0, p);
  const double t2 = th::black_mttf_s(2e10, 378.0, p);
  EXPECT_NEAR(t1 / t2, 4.0, 0.01);
  // Hotter is shorter.
  EXPECT_GT(th::black_mttf_s(1e10, 350.0, p),
            th::black_mttf_s(1e10, 420.0, p));
  // Reference point: ~10 years at 2 MA/cm^2, 378 K.
  EXPECT_NEAR(th::black_mttf_s(2e10, 378.0, p) / 3.15e7, 10.0, 0.5);
}

TEST(Em, CntImmunityThreshold) {
  EXPECT_TRUE(th::cnt_em_immune(1e12));   // below 1e9 A/cm^2
  EXPECT_FALSE(th::cnt_em_immune(2e13));  // above breakdown
}

TEST(Em, LognormalSamplesCenterOnMedian) {
  cnti::numerics::Rng rng(5);
  th::BlackParams p;
  const double median = th::black_mttf_s(2e10, 378.0, p);
  std::vector<double> s;
  for (int i = 0; i < 4000; ++i) {
    s.push_back(th::sample_ttf_s(2e10, 378.0, rng, p));
  }
  const auto sum = cnti::numerics::summarize(s);
  EXPECT_NEAR(sum.median, median, 0.05 * median);
}

TEST(Em, AccelerationFactorConsistency) {
  th::BlackParams p;
  const double f =
      th::em_acceleration_factor(2.5e10, 573.0, 1e10, 378.0, p);
  EXPECT_GT(f, 1.0);  // use conditions are milder than stress
  EXPECT_NEAR(f, th::black_mttf_s(1e10, 378.0, p) /
                     th::black_mttf_s(2.5e10, 573.0, p),
              1e-9 * f);
}

}  // namespace
