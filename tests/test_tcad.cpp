// Tests for the TCAD field solver: analytic parallel-plate / coaxial
// checks, Maxwell matrix properties, resistance of known shapes, current
// hot-spots, and the Fig. 10 benchmark structure.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/spice_io.hpp"
#include "common/constants.hpp"
#include "common/units.hpp"
#include "tcad/field_solver.hpp"
#include "tcad/netlist_export.hpp"
#include "tcad/structure.hpp"

namespace ct = cnti::tcad;
using cnti::phys::kEpsilon0;

namespace {

TEST(Grid, UniformSpacingAndIndexing) {
  const auto g = ct::Grid3D::uniform(1e-6, 2e-6, 3e-6, 11, 21, 31);
  EXPECT_EQ(g.nx(), 11u);
  EXPECT_NEAR(g.dx(0), 0.1e-6, 1e-12);
  EXPECT_NEAR(g.dy(0), 0.1e-6, 1e-12);
  EXPECT_NEAR(g.dz(0), 0.1e-6, 1e-12);
  EXPECT_EQ(g.node_index(0, 0, 0), 0u);
  EXPECT_EQ(g.node_index(10, 20, 30), g.node_count() - 1);
  EXPECT_EQ(g.cell_count(), 10u * 20u * 30u);
}

TEST(Grid, RejectsNonMonotoneAxes) {
  EXPECT_THROW(ct::Grid3D({0.0, 1.0, 0.5}, {0.0, 1.0}, {0.0, 1.0}),
               cnti::PreconditionError);
}

TEST(Structure, PaintAndQueryMaterials) {
  ct::Structure s(ct::Grid3D::uniform(1e-6, 1e-6, 1e-6, 11, 11, 11), 1.0);
  s.paint_dielectric({0, 1e-6, 0, 1e-6, 0, 0.5e-6}, 3.9);
  // Cell at bottom is oxide, top is background.
  EXPECT_NEAR(s.cell_permittivity(0, 0, 0), 3.9 * kEpsilon0, 1e-15);
  EXPECT_NEAR(s.cell_permittivity(0, 0, 9), 1.0 * kEpsilon0, 1e-15);
}

TEST(Structure, NodeConductorMapping) {
  ct::Structure s(ct::Grid3D::uniform(1e-6, 1e-6, 1e-6, 11, 11, 11), 1.0);
  const int c =
      s.add_conductor("c0", {0, 0.2e-6, 0, 0.2e-6, 0, 0.2e-6}, 1e7);
  EXPECT_EQ(s.node_conductor(0, 0, 0), c);
  EXPECT_EQ(s.node_conductor(2, 2, 2), c);  // surface node
  EXPECT_EQ(s.node_conductor(5, 5, 5), -1);
}

TEST(FieldSolver, ParallelPlateCapacitance) {
  // Two plates spanning the x-y cross-section, separated in z by d:
  // C = eps A / d. Use eps_r = 2.5, A = 1 um^2, d = 0.2 um.
  ct::Structure s(ct::Grid3D::uniform(1e-6, 1e-6, 0.4e-6, 9, 9, 21), 2.5);
  const int bot = s.add_conductor("bot", {0, 1e-6, 0, 1e-6, 0, 0.1e-6});
  (void)bot;
  s.add_conductor("top", {0, 1e-6, 0, 1e-6, 0.3e-6, 0.4e-6});
  const auto caps = ct::extract_capacitance(s);
  const double c_expected = 2.5 * kEpsilon0 * 1e-12 / 0.2e-6;
  // Coupling capacitance = -C_01; fringing is absent because the plates
  // span the whole domain cross-section (Neumann side walls).
  EXPECT_NEAR(-caps.matrix(0, 1), c_expected, 0.02 * c_expected);
  EXPECT_NEAR(-caps.matrix(1, 0), c_expected, 0.02 * c_expected);
}

TEST(FieldSolver, MaxwellMatrixSymmetricDiagonallyDominant) {
  ct::Structure s(ct::Grid3D::uniform(0.6e-6, 0.6e-6, 0.4e-6, 13, 13, 9),
                  2.5);
  s.add_conductor("a", {0.1e-6, 0.2e-6, 0.1e-6, 0.5e-6, 0.15e-6, 0.25e-6});
  s.add_conductor("b", {0.3e-6, 0.4e-6, 0.1e-6, 0.5e-6, 0.15e-6, 0.25e-6});
  s.add_conductor("plane", {0, 0.6e-6, 0, 0.6e-6, 0, 0.05e-6});
  const auto caps = ct::extract_capacitance(s);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(caps.matrix(i, i), 0.0);
    double off_sum = 0.0;
    for (int j = 0; j < 3; ++j) {
      if (i == j) continue;
      EXPECT_LT(caps.matrix(i, j), 1e-21);  // off-diagonals <= 0
      EXPECT_NEAR(caps.matrix(i, j), caps.matrix(j, i),
                  0.02 * std::abs(caps.matrix(i, j)) + 1e-20);
      off_sum += -caps.matrix(i, j);
    }
    EXPECT_GE(caps.matrix(i, i), off_sum - 1e-20);
  }
}

TEST(FieldSolver, CapacitanceLinearInUniformPermittivity) {
  // Laplace is linear in eps: doubling the background eps_r must double
  // every entry of the Maxwell matrix.
  const auto extract_with = [](double eps_r) {
    ct::Structure s(ct::Grid3D::uniform(1e-6, 1e-6, 0.4e-6, 9, 9, 21),
                    eps_r);
    s.add_conductor("bot", {0, 1e-6, 0, 1e-6, 0, 0.1e-6});
    s.add_conductor("top", {0, 1e-6, 0, 1e-6, 0.3e-6, 0.4e-6});
    return ct::extract_capacitance(s);
  };
  const auto c1 = extract_with(2.0);
  const auto c2 = extract_with(4.0);
  const double ref = std::abs(c1.matrix(0, 1));
  EXPECT_NEAR(c2.matrix(0, 1), 2.0 * c1.matrix(0, 1), 1e-4 * ref);
}

TEST(FieldSolver, BarResistanceMatchesRhoLOverA) {
  // Uniform bar 1 x 0.1 x 0.1 um, kappa = 1e7 S/m, current along x:
  // R = L / (kappa A) = 1e-6 / (1e7 * 1e-14) = 10 Ohm.
  ct::Structure s(ct::Grid3D::uniform(1e-6, 0.1e-6, 0.1e-6, 41, 5, 5), 1.0);
  const int bar =
      s.add_conductor("bar", {0, 1e-6, 0, 0.1e-6, 0, 0.1e-6}, 1e7);
  const auto res = ct::extract_resistance(
      s, bar, {0, 1e-12, 0, 0.1e-6, 0, 0.1e-6},
      {1e-6 - 1e-12, 1e-6, 0, 0.1e-6, 0, 0.1e-6});
  EXPECT_NEAR(res.resistance_ohm, 10.0, 0.2);
  // Uniform bar: |J| = kappa * E = 1e7 * (1 V / 1e-6 m) = 1e13 A/m^2.
  EXPECT_NEAR(res.max_current_density, 1e13, 0.05e13);
}

TEST(FieldSolver, NotchCreatesCurrentHotspot) {
  // A bar necked down in the middle: hot-spot must sit in the neck and
  // J_max must exceed the uniform-bar value.
  ct::Structure s(ct::Grid3D::uniform(1e-6, 0.2e-6, 0.1e-6, 41, 9, 5), 1.0);
  const int bar =
      s.add_conductor("bar", {0, 0.45e-6, 0, 0.2e-6, 0, 0.1e-6}, 1e7);
  // Neck: half the width.
  s.add_conductor_box(bar, {0.45e-6, 0.55e-6, 0, 0.1e-6, 0, 0.1e-6});
  s.add_conductor_box(bar, {0.55e-6, 1e-6, 0, 0.2e-6, 0, 0.1e-6});
  const auto res = ct::extract_resistance(
      s, bar, {0, 1e-12, 0, 0.2e-6, 0, 0.1e-6},
      {1e-6 - 1e-12, 1e-6, 0, 0.2e-6, 0, 0.1e-6});
  EXPECT_GT(res.resistance_ohm, 5.0);  // more than the unnotched bar
  EXPECT_GE(res.hotspot_x, 0.4e-6);
  EXPECT_LE(res.hotspot_x, 0.6e-6);
  EXPECT_LE(res.hotspot_y, 0.12e-6);  // inside the neck
}

TEST(FieldSolver, TerminalsMustTouchConductor) {
  ct::Structure s(ct::Grid3D::uniform(1e-6, 0.1e-6, 0.1e-6, 11, 3, 3), 1.0);
  const int bar =
      s.add_conductor("bar", {0, 0.4e-6, 0, 0.1e-6, 0, 0.1e-6}, 1e7);
  // Terminal B beyond the bar: no current path.
  EXPECT_THROW(ct::extract_resistance(
                   s, bar, {0, 1e-12, 0, 0.1e-6, 0, 0.1e-6},
                   {1e-6 - 1e-12, 1e-6, 0, 0.1e-6, 0, 0.1e-6}),
               cnti::PreconditionError);
}

TEST(Fig10, CrosstalkCapacitancesExtracted) {
  ct::Fig10Options opt;
  opt.line_length_nm = 280.0;  // keep the test grid modest
  opt.grid_step_nm = 14.0;
  auto fig = ct::build_fig10_structure(opt);
  const auto caps = ct::extract_capacitance(fig.structure);
  // Victim couples to both aggressors (cross-talk), aggressor-aggressor
  // coupling is far weaker (screened by the victim between them).
  const double c_va = -caps.matrix(fig.m1_victim, fig.m1_left);
  const double c_vb = -caps.matrix(fig.m1_victim, fig.m1_right);
  const double c_aa = -caps.matrix(fig.m1_left, fig.m1_right);
  EXPECT_GT(c_va, 0.0);
  EXPECT_NEAR(c_va, c_vb, 0.25 * c_va);  // near-symmetric layout
  EXPECT_LT(c_aa, 0.5 * c_va);
  // Everything couples to the ground plane.
  EXPECT_GT(-caps.matrix(fig.m1_left, fig.ground_plane), 0.0);
}

TEST(Fig10, ViaPathResistanceAndHotspot) {
  ct::Fig10Options opt;
  opt.line_length_nm = 280.0;
  auto fig = ct::build_fig10_structure(opt);
  const auto res = ct::extract_resistance(fig.structure, fig.m1_victim,
                                          fig.via_terminal_top,
                                          fig.victim_terminal_end);
  EXPECT_GT(res.resistance_ohm, 1.0);
  EXPECT_LT(res.resistance_ohm, 1e4);
  EXPECT_GT(res.max_current_density, 0.0);
}

TEST(NetlistExport, SpiceRoundTripOfExtractedNetwork) {
  // Neumann outer boundaries conserve charge, so with N conductors the
  // star network is pure coupling caps (ground caps vanish identically).
  ct::Structure s(ct::Grid3D::uniform(0.6e-6, 0.6e-6, 0.4e-6, 13, 13, 9),
                  2.5);
  s.add_conductor("a", {0.1e-6, 0.2e-6, 0.1e-6, 0.5e-6, 0.15e-6, 0.25e-6});
  s.add_conductor("b", {0.3e-6, 0.4e-6, 0.1e-6, 0.5e-6, 0.15e-6, 0.25e-6});
  s.add_conductor("plane", {0, 0.6e-6, 0, 0.6e-6, 0, 0.05e-6});
  const auto caps = ct::extract_capacitance(s);
  const std::string text =
      ct::export_spice_netlist(s, caps, "extracted parasitics");
  const auto parsed = cnti::circuit::parse_spice(text);
  // Coupling caps: a-b, a-plane, b-plane.
  EXPECT_EQ(parsed.circuit.capacitors().size(), 3u);
  double c_total = 0.0;
  for (const auto& c : parsed.circuit.capacitors()) c_total += c.farads;
  EXPECT_GT(c_total, 0.0);
}

}  // namespace
