// Scenario service tests: the JSON wire parser, the Scenario/Result
// serialization round trips (bit-identical doubles), the crash-safe
// disk cache (corruption/truncation/version eviction, LRU bounds,
// restart persistence), the MemoCache tier integration, and the daemon
// itself — including the acceptance contract that N concurrent wire
// clients receive results bit-identical to direct ScenarioEngine::run
// calls, cold or warm.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/json_sink.hpp"
#include "scenario/engine.hpp"
#include "scenario/stage_codecs.hpp"
#include "service/client.hpp"
#include "service/disk_cache.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace fs = std::filesystem;
namespace sc = cnti::scenario;
namespace sv = cnti::service;

namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Unique scratch directory, removed on scope exit.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "cnti_service_XXXXXX").string();
    path_ = ::mkdtemp(tmpl.data());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Small but full-coverage scenario: every disk-persisted stage engaged
/// (TCAD capacitance, MNA delay, ROM bus noise, thermal) on a tiny grid.
sc::Scenario full_scenario(int i = 0) {
  sc::Scenario s;
  s.label = "svc/" + std::to_string(i);
  s.tech.capacitance_model = sc::CapacitanceModel::kTcad;
  s.tech.dopant_concentration = 0.5;
  s.tech.contact_resistance_kohm = 20.0;
  s.workload.length_um = 20.0 + 5.0 * i;
  s.workload.driver_resistance_kohm = 5.0;
  s.workload.bus_lines = 4;
  s.workload.bus_segments = 8;
  s.analysis.delay_model = sc::DelayModel::kMnaTransient;
  s.analysis.delay_segments = 6;
  s.analysis.noise = true;
  s.analysis.thermal = true;
  s.analysis.time_steps = 150;
  return s;
}

std::vector<sc::Scenario> full_batch(int n) {
  std::vector<sc::Scenario> batch;
  for (int i = 0; i < n; ++i) batch.push_back(full_scenario(i));
  return batch;
}

void expect_bit_identical(const sc::ScenarioResult& a,
                          const sc::ScenarioResult& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(bits(a.line.fermi_shift_ev), bits(b.line.fermi_shift_ev));
  EXPECT_EQ(bits(a.line.channels_per_shell), bits(b.line.channels_per_shell));
  EXPECT_EQ(bits(a.line.mfp_um), bits(b.line.mfp_um));
  EXPECT_EQ(a.line.shells, b.line.shells);
  EXPECT_EQ(bits(a.line.resistance_kohm), bits(b.line.resistance_kohm));
  EXPECT_EQ(bits(a.line.capacitance_ff), bits(b.line.capacitance_ff));
  EXPECT_EQ(bits(a.line.electrostatic_cap_af_per_um),
            bits(b.line.electrostatic_cap_af_per_um));
  EXPECT_EQ(bits(a.line.delay_ps), bits(b.line.delay_ps));
  EXPECT_EQ(a.line.delay_method, b.line.delay_method);
  ASSERT_EQ(a.noise.has_value(), b.noise.has_value());
  if (a.noise) {
    EXPECT_EQ(bits(a.noise->peak_noise_v), bits(b.noise->peak_noise_v));
    EXPECT_EQ(bits(a.noise->peak_time_s), bits(b.noise->peak_time_s));
    EXPECT_EQ(a.noise->worst_victim, b.noise->worst_victim);
    EXPECT_EQ(bits(a.noise->aggressor_delay_s),
              bits(b.noise->aggressor_delay_s));
    EXPECT_EQ(a.noise->unknowns, b.noise->unknowns);
  }
  ASSERT_EQ(a.thermal.has_value(), b.thermal.has_value());
  if (a.thermal) {
    EXPECT_EQ(bits(a.thermal->peak_rise_k), bits(b.thermal->peak_rise_k));
    EXPECT_EQ(bits(a.thermal->hot_resistance_kohm),
              bits(b.thermal->hot_resistance_kohm));
    EXPECT_EQ(a.thermal->thermal_runaway, b.thermal->thermal_runaway);
    EXPECT_EQ(bits(a.thermal->ampacity_ua), bits(b.thermal->ampacity_ua));
    EXPECT_EQ(bits(a.thermal->current_density_a_cm2),
              bits(b.thermal->current_density_a_cm2));
    EXPECT_EQ(a.thermal->cnt_em_immune, b.thermal->cnt_em_immune);
    EXPECT_EQ(bits(a.thermal->cu_reference_mttf_s),
              bits(b.thermal->cu_reference_mttf_s));
  }
}

/// Raw wire access for protocol-level tests the typed client can't
/// express (malformed lines, schema-violating requests).
class RawConnection {
 public:
  explicit RawConnection(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  /// Best-effort framed send (a server-side close surfaces on read_line).
  void send_line(const std::string& body) {
    std::string framed = body + "\n";
    std::string_view rest = framed;
    while (!rest.empty()) {
      const ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
      if (n <= 0) return;
      rest.remove_prefix(static_cast<std::size_t>(n));
    }
  }

  std::string read_line() {
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buffer_.find('\n');
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return line;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// ---------------------------------------------------------------------------
// Wire JSON parser.

TEST(ServiceJson, ParsesScalarsArraysAndNestedObjects) {
  const sv::JsonValue v = sv::parse_json(
      R"({"a": 1.5, "b": [true, false, null, "x"], "c": {"d": -2}})");
  EXPECT_EQ(v.at("a").as_number(), 1.5);
  const auto& arr = v.at("b").as_array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_FALSE(arr[1].as_bool());
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_EQ(arr[3].as_string(), "x");
  EXPECT_EQ(v.at("c").at("d").as_number(), -2.0);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), sv::ProtocolError);
  EXPECT_THROW(v.at("a").as_string(), sv::ProtocolError);
}

TEST(ServiceJson, NumbersRoundTripDoubleBitsAt17Digits) {
  const double values[] = {1.0 / 3.0,  2.0 / 7.0, 1e-300,
                           6.02214e23, -0.0,      123456.789012345678};
  for (const double v : values) {
    const std::string text = cnti::json_number(v);
    const double back = sv::parse_json(text).as_number();
    EXPECT_EQ(bits(back), bits(v)) << text;
  }
}

TEST(ServiceJson, DecodesEscapesIncludingSurrogatePairs) {
  const sv::JsonValue v =
      sv::parse_json(R"("a\"b\\c\ndAé中😀")");
  EXPECT_EQ(v.as_string(),
            "a\"b\\c\nd"
            "A\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80");
}

TEST(ServiceJson, RejectsMalformedDocuments) {
  EXPECT_THROW(sv::parse_json("{"), sv::ProtocolError);
  EXPECT_THROW(sv::parse_json("{} trailing"), sv::ProtocolError);
  EXPECT_THROW(sv::parse_json(R"({"a": 1, "a": 2})"), sv::ProtocolError);
  EXPECT_THROW(sv::parse_json("\"\x01\""), sv::ProtocolError);
  EXPECT_THROW(sv::parse_json(R"("\ud800 lonely")"), sv::ProtocolError);
  EXPECT_THROW(sv::parse_json("truthy"), sv::ProtocolError);
  EXPECT_THROW(sv::parse_json("1.2.3"), sv::ProtocolError);
  EXPECT_THROW(sv::parse_json(""), sv::ProtocolError);
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW(sv::parse_json(deep), sv::ProtocolError);
}

// ---------------------------------------------------------------------------
// Scenario / result wire serialization.

TEST(ServiceProtocol, ScenarioRoundTripPreservesContentKeyAndLabel) {
  sc::Scenario s = full_scenario(3);
  s.label = "weird \"label\"\nwith breaks";
  s.tech.dopant = cnti::atomistic::DopantSpecies::kPtCl4External;
  s.analysis.noise_model = sc::NoiseModel::kFullMna;
  const sc::Scenario back =
      sv::scenario_from_json(sv::parse_json(sv::scenario_to_json(s)));
  EXPECT_EQ(back.label, s.label);
  EXPECT_EQ(sc::content_key(back), sc::content_key(s));
  EXPECT_EQ(sc::content_key(back.tech), sc::content_key(s.tech));
  EXPECT_EQ(sc::content_key(back.workload), sc::content_key(s.workload));
  EXPECT_EQ(sc::content_key(back.analysis), sc::content_key(s.analysis));
}

TEST(ServiceProtocol, AbsentScenarioMembersKeepSpecDefaults) {
  const sc::Scenario parsed = sv::scenario_from_json(sv::parse_json("{}"));
  EXPECT_EQ(sc::content_key(parsed), sc::content_key(sc::Scenario{}));
  const sc::Scenario partial = sv::scenario_from_json(
      sv::parse_json(R"({"workload": {"length_um": 42.0}})"));
  EXPECT_EQ(partial.workload.length_um, 42.0);
  EXPECT_EQ(partial.workload.bus_lines, sc::WorkloadSpec{}.bus_lines);
}

TEST(ServiceProtocol, UnknownMembersAreRejectedEverywhere) {
  EXPECT_THROW(sv::scenario_from_json(sv::parse_json(R"({"bogus": 1})")),
               sv::ProtocolError);
  EXPECT_THROW(
      sv::scenario_from_json(sv::parse_json(R"({"tech": {"lenght": 1}})")),
      sv::ProtocolError);
  EXPECT_THROW(sv::scenario_from_json(sv::parse_json(
                   R"({"analysis": {"delay_segments": 1.5}})")),
               sv::ProtocolError);
  EXPECT_THROW(sv::scenario_from_json(sv::parse_json(
                   R"({"tech": {"dopant": "unobtainium"}})")),
               sv::ProtocolError);
}

TEST(ServiceProtocol, VariabilityRoundTripsIncludingFullWidthSeed) {
  sc::Scenario s = full_scenario(2);
  // A seed above 2^53 would lose low bits as a JSON double; the wire
  // carries it as a 16-hex-digit string instead.
  s.variability.seed = 0xdeadbeefcafebabeULL;
  s.variability.samples = 100000;
  s.variability.resistance_span = 0.15;
  s.variability.capacitance_span = 0.05;
  s.variability.coupling_span = 0.25;
  const std::string wire = sv::scenario_to_json(s);
  EXPECT_NE(wire.find("\"deadbeefcafebabe\""), std::string::npos);
  const sc::Scenario back = sv::scenario_from_json(sv::parse_json(wire));
  EXPECT_EQ(back.variability.seed, s.variability.seed);
  EXPECT_EQ(back.variability.samples, s.variability.samples);
  EXPECT_EQ(bits(back.variability.resistance_span),
            bits(s.variability.resistance_span));
  EXPECT_EQ(bits(back.variability.capacitance_span),
            bits(s.variability.capacitance_span));
  EXPECT_EQ(bits(back.variability.coupling_span),
            bits(s.variability.coupling_span));
  EXPECT_EQ(sc::content_key(back), sc::content_key(s));
  EXPECT_EQ(sc::content_key(back.variability), sc::content_key(s.variability));
}

TEST(ServiceProtocol, VariabilityRejectsUnknownMembersAndBadSeeds) {
  EXPECT_THROW(sv::scenario_from_json(sv::parse_json(
                   R"({"variability": {"sample": 3}})")),
               sv::ProtocolError);
  EXPECT_THROW(sv::scenario_from_json(sv::parse_json(
                   R"({"variability": {"seed": "not-hex-at-all!"}})")),
               sv::ProtocolError);
  EXPECT_THROW(sv::scenario_from_json(sv::parse_json(
                   R"({"variability": {"seed": 17}})")),
               sv::ProtocolError);
}

TEST(ServiceProtocol, NullAggressorDelayParsesBackToNaN) {
  sc::ScenarioResult r;
  r.label = "never-crossed";
  r.noise.emplace();
  r.noise->peak_noise_v = 0.012;
  r.noise->worst_victim = 1;
  r.noise->aggressor_delay_s = std::nan("");
  const std::string wire = sv::result_to_json(r);
  EXPECT_NE(wire.find("\"aggressor_delay_s\": null"), std::string::npos);
  const sc::ScenarioResult back = sv::result_from_json(sv::parse_json(wire));
  ASSERT_TRUE(back.noise.has_value());
  EXPECT_TRUE(std::isnan(back.noise->aggressor_delay_s));
  EXPECT_EQ(bits(back.noise->peak_noise_v), bits(r.noise->peak_noise_v));
  // And the round trip is stable: serializing again yields the same wire.
  EXPECT_EQ(sv::result_to_json(back), wire);
}

TEST(ServiceProtocol, ResultRoundTripIsBitIdentical) {
  const sc::ScenarioEngine engine;
  const sc::ScenarioResult r = engine.run(full_scenario());
  ASSERT_TRUE(r.noise.has_value());
  ASSERT_TRUE(r.thermal.has_value());
  const sc::ScenarioResult back =
      sv::result_from_json(sv::parse_json(sv::result_to_json(r)));
  expect_bit_identical(back, r);
}

TEST(ServiceProtocol, EnumWireNamesRoundTrip) {
  using cnti::atomistic::DopantSpecies;
  for (const auto d :
       {DopantSpecies::kIodineInternal, DopantSpecies::kIodineExternal,
        DopantSpecies::kPtCl4External, DopantSpecies::kPtClInternal}) {
    EXPECT_EQ(sv::dopant_from_wire(sv::to_wire(d)), d);
  }
  for (const auto m :
       {sc::CapacitanceModel::kAnalytic, sc::CapacitanceModel::kTcad}) {
    EXPECT_EQ(sv::capacitance_model_from_wire(sv::to_wire(m)), m);
  }
  for (const auto m :
       {sc::DelayModel::kElmore, sc::DelayModel::kMnaTransient}) {
    EXPECT_EQ(sv::delay_model_from_wire(sv::to_wire(m)), m);
  }
  for (const auto m :
       {sc::NoiseModel::kReducedOrder, sc::NoiseModel::kFullMna}) {
    EXPECT_EQ(sv::noise_model_from_wire(sv::to_wire(m)), m);
  }
}

// ---------------------------------------------------------------------------
// Disk cache.

sc::ContentKey test_key(int i) {
  return sc::KeyHasher("test.v1").add(i).key();
}

TEST(DiskCache, StoreLoadRoundTripAndStats) {
  const TempDir dir;
  sv::DiskCache cache({dir.path()});
  EXPECT_FALSE(cache.load("stage", "s.v1", test_key(1)).has_value());
  cache.store("stage", "s.v1", test_key(1), "payload bytes");
  const auto loaded = cache.load("stage", "s.v1", test_key(1));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "payload bytes");
  const sv::DiskCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.stores, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.bytes, 0u);
}

TEST(DiskCache, PerStageStatSlicesSumToTheAggregateCounters) {
  const TempDir dir;
  sv::DiskCache cache({dir.path()});
  EXPECT_TRUE(cache.stats_by_stage().empty());

  cache.store("alpha", "s.v1", test_key(1), "a");
  cache.store("beta", "s.v1", test_key(2), "b");
  EXPECT_FALSE(cache.load("alpha", "s.v1", test_key(9)).has_value());
  EXPECT_TRUE(cache.load("alpha", "s.v1", test_key(1)).has_value());
  EXPECT_TRUE(cache.load("beta", "s.v1", test_key(2)).has_value());
  // A schema bump on beta's entry reads as a corrupt eviction + miss,
  // attributed to beta only.
  EXPECT_FALSE(cache.load("beta", "s.v2", test_key(2)).has_value());

  const auto by_stage = cache.stats_by_stage();
  ASSERT_EQ(by_stage.size(), 2u);
  const sv::DiskStageStats& alpha = by_stage.at("alpha");
  EXPECT_EQ(alpha.hits, 1u);
  EXPECT_EQ(alpha.misses, 1u);
  EXPECT_EQ(alpha.stores, 1u);
  EXPECT_EQ(alpha.corrupt_evictions, 0u);
  const sv::DiskStageStats& beta = by_stage.at("beta");
  EXPECT_EQ(beta.hits, 1u);
  EXPECT_EQ(beta.misses, 1u);
  EXPECT_EQ(beta.stores, 1u);
  EXPECT_EQ(beta.corrupt_evictions, 1u);

  // The sliced counters partition the aggregates exactly.
  const sv::DiskCacheStats total = cache.stats();
  EXPECT_EQ(alpha.hits + beta.hits, total.hits);
  EXPECT_EQ(alpha.misses + beta.misses, total.misses);
  EXPECT_EQ(alpha.stores + beta.stores, total.stores);
  EXPECT_EQ(alpha.store_failures + beta.store_failures,
            total.store_failures);
  EXPECT_EQ(alpha.corrupt_evictions + beta.corrupt_evictions,
            total.corrupt_evictions);
}

TEST(DiskCache, PersistsAcrossInstances) {
  const TempDir dir;
  {
    sv::DiskCache cache({dir.path()});
    cache.store("stage", "s.v1", test_key(7), "survives restart");
  }
  sv::DiskCache reborn({dir.path()});
  const auto loaded = reborn.load("stage", "s.v1", test_key(7));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "survives restart");
  EXPECT_EQ(reborn.stats().entries, 1u);
}

TEST(DiskCache, WrongValueSchemaVersionIsEvictedAsStale) {
  const TempDir dir;
  sv::DiskCache cache({dir.path()});
  cache.store("stage", "s.v1", test_key(2), "old layout");
  // A value-schema bump must read as a clean miss (the stale file is
  // removed, never misdecoded).
  EXPECT_FALSE(cache.load("stage", "s.v2", test_key(2)).has_value());
  EXPECT_EQ(cache.stats().corrupt_evictions, 1u);
  EXPECT_FALSE(cache.load("stage", "s.v1", test_key(2)).has_value());
}

TEST(DiskCache, CorruptAndTruncatedEntriesAreEvicted) {
  const TempDir dir;
  sv::DiskCache cache({dir.path()});
  cache.store("stage", "s.v1", test_key(3), "corrupt me");
  cache.store("stage", "s.v1", test_key(4), "truncate me");
  std::vector<std::string> files;
  for (const auto& de : fs::directory_iterator(dir.path())) {
    files.push_back(de.path().string());
  }
  ASSERT_EQ(files.size(), 2u);
  std::sort(files.begin(), files.end());
  {
    // XOR one byte so the checksum can no longer match.
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(40);
    const char c = static_cast<char>(f.get());
    f.seekp(40);
    f.put(static_cast<char>(c ^ 0x5a));
  }
  fs::resize_file(files[1], fs::file_size(files[1]) / 2);

  EXPECT_FALSE(cache.load("stage", "s.v1", test_key(3)).has_value());
  EXPECT_FALSE(cache.load("stage", "s.v1", test_key(4)).has_value());
  EXPECT_EQ(cache.stats().corrupt_evictions, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_TRUE(fs::is_empty(dir.path()));
}

TEST(DiskCache, LruEvictionKeepsRecentEntriesUnderTheByteBudget) {
  const TempDir dir;
  sv::DiskCacheOptions options;
  options.dir = dir.path();
  const std::string payload(64, 'p');
  // Room for roughly three entries (payload + ~60B header per entry).
  options.max_bytes = 400;
  sv::DiskCache cache(options);
  for (int i = 0; i < 6; ++i) {
    cache.store("stage", "s.v1", test_key(i), payload);
  }
  const sv::DiskCacheStats st = cache.stats();
  EXPECT_GT(st.lru_evictions, 0u);
  EXPECT_LE(st.bytes, options.max_bytes);
  // The newest entry always survives; the oldest is gone.
  EXPECT_TRUE(cache.load("stage", "s.v1", test_key(5)).has_value());
  EXPECT_FALSE(cache.load("stage", "s.v1", test_key(0)).has_value());
}

TEST(DiskCache, StrayAtomicTempFilesAreSweptAtStartup) {
  const TempDir dir;
  const std::string stray =
      dir.path() + "/stage.deadbeef.cache" +
      std::string(cnti::kAtomicTempMarker) + "123.0";
  std::ofstream(stray) << "a crashed writer left this";
  ASSERT_TRUE(fs::exists(stray));
  sv::DiskCache cache({dir.path()});
  EXPECT_FALSE(fs::exists(stray));
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// MemoCache + tier integration.

TEST(MemoCacheTier, RevivesValuesAcrossCacheInstances) {
  const TempDir dir;
  auto tier = std::make_shared<sv::DiskCache>(
      sv::DiskCacheOptions{dir.path()});
  const sc::ContentKey key = test_key(11);
  {
    sc::MemoCache warm(true, tier);
    const auto v = warm.get_or_compute<double>(
        "stage", key, [] { return 42.5; }, &sc::scalar_codec());
    EXPECT_EQ(*v, 42.5);
    EXPECT_EQ(warm.stats("stage").misses, 1u);
  }
  sc::MemoCache fresh(true, tier);
  bool computed = false;
  const auto v = fresh.get_or_compute<double>(
      "stage", key,
      [&] {
        computed = true;
        return -1.0;
      },
      &sc::scalar_codec());
  EXPECT_FALSE(computed);
  EXPECT_EQ(bits(*v), bits(42.5));
  EXPECT_EQ(fresh.stats("stage").disk_hits, 1u);
  EXPECT_EQ(fresh.stats("stage").misses, 0u);
}

TEST(MemoCacheTier, DecodeFailureFallsBackToCompute) {
  const TempDir dir;
  auto tier = std::make_shared<sv::DiskCache>(
      sv::DiskCacheOptions{dir.path()});
  // Same value schema, but a decoder that rejects everything: the tier's
  // bytes are intact, so this models codec/schema drift the checksum
  // cannot see — it must recompute, not trust the bytes.
  sc::StageCodec<double> broken = sc::scalar_codec();
  broken.decode = [](std::string_view) { return std::optional<double>{}; };
  tier->store("stage", broken.schema, test_key(12), "not a double");
  sc::MemoCache cache(true, tier);
  const auto v = cache.get_or_compute<double>(
      "stage", test_key(12), [] { return 7.0; }, &broken);
  EXPECT_EQ(*v, 7.0);
  EXPECT_EQ(cache.stats("stage").misses, 1u);
  EXPECT_EQ(cache.stats("stage").disk_hits, 0u);
}

TEST(MemoCacheTier, DisabledCacheNeverTouchesTheTier) {
  const TempDir dir;
  auto tier = std::make_shared<sv::DiskCache>(
      sv::DiskCacheOptions{dir.path()});
  sc::MemoCache disabled(false, tier);
  const auto v = disabled.get_or_compute<double>(
      "stage", test_key(13), [] { return 1.0; }, &sc::scalar_codec());
  EXPECT_EQ(*v, 1.0);
  EXPECT_EQ(tier->stats().stores, 0u);
  EXPECT_EQ(tier->stats().misses, 0u);
}

// ---------------------------------------------------------------------------
// Engine warm restart through the tier.

sc::EngineOptions tiered_options(const std::string& dir) {
  sc::EngineOptions options;
  options.tier =
      std::make_shared<sv::DiskCache>(sv::DiskCacheOptions{dir});
  return options;
}

TEST(EngineTier, WarmRestartRecomputesNothingAndMatchesBitwise) {
  const TempDir dir;
  const auto batch = full_batch(3);
  std::vector<sc::ScenarioResult> cold;
  {
    const sc::ScenarioEngine engine(tiered_options(dir.path()));
    cold = engine.run_batch(batch);
  }
  // "Restart": a fresh engine + fresh DiskCache over the same directory.
  const sc::ScenarioEngine warm_engine(tiered_options(dir.path()));
  const auto warm = warm_engine.run_batch(batch);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    expect_bit_identical(warm[i], cold[i]);
  }
  // Zero recomputes anywhere — and the heavyweight memory-only stages
  // (ROM reduction, netlist build) were never even entered.
  std::uint64_t disk_hits = 0;
  for (const auto& [stage, st] : warm_engine.cache().all_stats()) {
    EXPECT_EQ(st.misses, 0u) << "stage " << stage << " recomputed";
    disk_hits += st.disk_hits;
  }
  EXPECT_GT(disk_hits, 0u);
  EXPECT_EQ(warm_engine.cache().stats(sc::stage::kBusRom).misses, 0u);
  EXPECT_EQ(warm_engine.cache().stats(sc::stage::kBusRom).hits, 0u);
}

TEST(EngineTier, CorruptedEntrySelfHealsWithIdenticalResults) {
  const TempDir dir;
  const auto batch = full_batch(2);
  std::vector<sc::ScenarioResult> cold;
  {
    const sc::ScenarioEngine engine(tiered_options(dir.path()));
    cold = engine.run_batch(batch);
  }
  // Vandalize every cache file: flip a byte in some, truncate others.
  int i = 0;
  for (const auto& de : fs::directory_iterator(dir.path())) {
    if (i++ % 2 == 0) {
      std::fstream f(de.path(),
                     std::ios::in | std::ios::out | std::ios::binary);
      f.seekp(static_cast<std::streamoff>(fs::file_size(de.path()) / 2));
      f.put('~');
    } else {
      fs::resize_file(de.path(), fs::file_size(de.path()) / 3);
    }
  }
  ASSERT_GT(i, 0);
  const auto options = tiered_options(dir.path());
  const sc::ScenarioEngine engine(options);
  const auto healed = engine.run_batch(batch);
  ASSERT_EQ(healed.size(), cold.size());
  for (std::size_t k = 0; k < healed.size(); ++k) {
    expect_bit_identical(healed[k], cold[k]);
  }
  const auto* disk = dynamic_cast<sv::DiskCache*>(options.tier.get());
  ASSERT_NE(disk, nullptr);
  EXPECT_GT(disk->stats().corrupt_evictions, 0u);
  // The vandalized entries were rewritten: a third engine sees all hits.
  const sc::ScenarioEngine again(tiered_options(dir.path()));
  (void)again.run_batch(batch);
  for (const auto& [stage, st] : again.cache().all_stats()) {
    EXPECT_EQ(st.misses, 0u) << "stage " << stage;
  }
}

// ---------------------------------------------------------------------------
// Daemon + wire client.

TEST(ScenarioService, PingStatsAndShutdownRequest) {
  sv::ScenarioServer server(sv::ServerOptions{});
  server.start();
  ASSERT_GT(server.port(), 0);
  sv::ScenarioClient client(server.port());
  EXPECT_TRUE(client.ping());
  EXPECT_TRUE(client.stats().empty());  // nothing run yet
  EXPECT_FALSE(
      server.wait_for_shutdown_request(std::chrono::milliseconds(10)));
  client.request_shutdown();
  EXPECT_TRUE(
      server.wait_for_shutdown_request(std::chrono::milliseconds(2000)));
  server.stop();
}

TEST(ScenarioService, MalformedRequestsErrorAndKeepTheConnectionUsable) {
  sv::ScenarioServer server(sv::ServerOptions{});
  server.start();
  RawConnection conn(server.port());
  ASSERT_TRUE(conn.ok());

  conn.send_line("this is not json");
  sv::JsonValue reply = sv::parse_json(conn.read_line());
  EXPECT_EQ(reply.at("type").as_string(), "error");

  conn.send_line(R"({"type": "run", "scenarios": [{"bogus": 1}]})");
  reply = sv::parse_json(conn.read_line());
  EXPECT_EQ(reply.at("type").as_string(), "error");
  EXPECT_NE(reply.at("message").as_string().find("bogus"),
            std::string::npos);

  // An invalid spec value fails validation per request, not in the batch.
  conn.send_line(
      R"({"type": "run", "scenarios": [{"tech": {"outer_diameter_nm": -5}}]})");
  reply = sv::parse_json(conn.read_line());
  EXPECT_EQ(reply.at("type").as_string(), "error");

  // The connection is still alive and serves valid requests.
  conn.send_line(R"({"type": "ping"})");
  reply = sv::parse_json(conn.read_line());
  EXPECT_EQ(reply.at("type").as_string(), "pong");
  server.stop();
}

TEST(ScenarioService, SingleClientMatchesDirectEngineBitwise) {
  sv::ScenarioServer server(sv::ServerOptions{});
  server.start();
  const auto batch = full_batch(3);
  sv::ScenarioClient client(server.port());
  const auto via_wire = client.run(batch);
  server.stop();

  const sc::ScenarioEngine direct;
  ASSERT_EQ(via_wire.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    expect_bit_identical(via_wire[i], direct.run(batch[i]));
  }
  // The done message carried the engine's cache stats.
  EXPECT_FALSE(client.last_cache_stats().empty());
}

TEST(ScenarioService, ConcurrentClientsAreBitIdenticalToDirectRuns) {
  sv::ScenarioServer server(sv::ServerOptions{});
  server.start();
  constexpr int kClients = 4;
  const auto batch = full_batch(3);
  std::vector<std::vector<sc::ScenarioResult>> received(kClients);
  {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        sv::ScenarioClient client(server.port());
        received[static_cast<std::size_t>(c)] = client.run(batch);
      });
    }
    for (auto& t : threads) t.join();
  }
  const std::uint64_t batches = server.batches_dispatched();
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, static_cast<std::uint64_t>(kClients));
  server.stop();

  const sc::ScenarioEngine direct;
  const auto want = direct.run_batch(batch);
  for (const auto& got : received) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_bit_identical(got[i], want[i]);
    }
  }
}

TEST(ScenarioService, WarmRestartedDaemonServesFromDiskBitIdentically) {
  const TempDir dir;
  const auto batch = full_batch(3);
  std::vector<sc::ScenarioResult> cold;
  {
    sv::ServerOptions options;
    options.engine = tiered_options(dir.path());
    sv::ScenarioServer server(options);
    server.start();
    sv::ScenarioClient client(server.port());
    cold = client.run(batch);
    server.stop();  // graceful: queue drained before exit
  }
  sv::ServerOptions options;
  options.engine = tiered_options(dir.path());
  sv::ScenarioServer server(options);
  server.start();
  sv::ScenarioClient client(server.port());
  const auto warm = client.run(batch);
  for (const auto& [stage, st] : client.last_cache_stats()) {
    EXPECT_EQ(st.misses, 0u) << "stage " << stage << " recomputed";
  }
  server.stop();
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < warm.size(); ++i) {
    expect_bit_identical(warm[i], cold[i]);
  }
}

TEST(ScenarioService, StatsVerbCarriesTheDiskTierBreakdown) {
  const TempDir dir;
  sv::ServerOptions options;
  options.engine = tiered_options(dir.path());
  sv::ScenarioServer server(options);
  server.start();
  sv::ScenarioClient client(server.port());
  (void)client.run(full_batch(2));

  const sv::JsonValue raw = client.stats_raw();
  const sv::JsonValue* disk = raw.find("disk");
  ASSERT_NE(disk, nullptr) << "tiered server must report disk stats";
  const auto& totals = disk->at("totals");
  EXPECT_GT(totals.at("stores").as_number(), 0.0);
  EXPECT_GT(totals.at("bytes").as_number(), 0.0);
  // Every per-stage slice names an engine stage and sums into the totals.
  double stage_stores = 0.0;
  for (const auto& [stage, slice] : disk->at("stages").as_object()) {
    EXPECT_FALSE(stage.empty());
    stage_stores += slice.at("stores").as_number();
  }
  EXPECT_EQ(stage_stores, totals.at("stores").as_number());
  server.stop();

  // A memory-only server omits the section rather than lying with zeros.
  sv::ScenarioServer plain(sv::ServerOptions{});
  plain.start();
  sv::ScenarioClient plain_client(plain.port());
  EXPECT_EQ(plain_client.stats_raw().find("disk"), nullptr);
  plain.stop();
}

TEST(ScenarioService, MetricsVerbReturnsALiveRegistrySnapshot) {
  sv::ScenarioServer server(sv::ServerOptions{});
  server.start();
  sv::ScenarioClient client(server.port());
  (void)client.run(full_batch(2));

  const sv::JsonValue raw = client.metrics();
  const cnti::obs::MetricsSnapshot snap =
      sv::metrics_snapshot_from_json(raw);
  ASSERT_FALSE(snap.counters.empty());
  // The service tier counted this connection's requests...
  EXPECT_GE(snap.counters.at("cnti.service.requests"), 2u);
  EXPECT_GE(snap.counters.at("cnti.service.scenarios"), 2u);
  // ...and the engine/cache tiers were reached through the same registry.
  EXPECT_GE(snap.counters.at("cnti.engine.scenarios"), 2u);
  // The daemon holds a timing reference while running, so request
  // latencies are live even without a trace session.
  // (>= 1: the metrics request's own span is still open when the snapshot
  // is taken, but the run request completed before it.)
  const auto& req = snap.histograms.at("cnti.service.request_ns");
  EXPECT_GE(req.count, 1u);
  EXPECT_GT(req.sum_ns, 0u);
  server.stop();
}

TEST(ScenarioService, RunAfterStopIsRefusedNotHung) {
  sv::ScenarioServer server(sv::ServerOptions{});
  server.start();
  RawConnection conn(server.port());
  ASSERT_TRUE(conn.ok());
  std::thread stopper([&] { server.stop(); });
  stopper.join();
  // The connection was shut down read-side; a run request now either
  // errors or the socket reads EOF — never a hang.
  conn.send_line(R"({"type": "ping"})");
  (void)conn.read_line();
  SUCCEED();
}

}  // namespace
