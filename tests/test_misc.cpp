// Cross-cutting unit tests: the API surface not exercised elsewhere —
// units, tables/CSV, contracts, SPICE edge cases, measurement utilities,
// electrostatics variants, via scaling, bundle requirements, wafer and
// test-chip edge cases.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "charz/testchip.hpp"
#include "circuit/measure.hpp"
#include "circuit/spice_io.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/electrostatics.hpp"
#include "core/multiscale.hpp"
#include "core/swcnt_line.hpp"
#include "core/via_model.hpp"
#include "process/wafer.hpp"

namespace u = cnti::units;
namespace cc = cnti::core;
namespace cir = cnti::circuit;
namespace cz = cnti::charz;
namespace cp = cnti::process;

namespace {

TEST(Units, RoundTrips) {
  EXPECT_DOUBLE_EQ(u::to_nm(u::from_nm(7.5)), 7.5);
  EXPECT_DOUBLE_EQ(u::to_um(u::from_um(500.0)), 500.0);
  EXPECT_DOUBLE_EQ(u::to_fF(u::from_fF(3.2)), 3.2);
  EXPECT_DOUBLE_EQ(u::to_aF_per_um(u::from_aF_per_um(96.5)), 96.5);
  EXPECT_DOUBLE_EQ(u::to_kOhm(u::from_kOhm(12.9)), 12.9);
  EXPECT_DOUBLE_EQ(u::to_uA(u::from_uA(25.0)), 25.0);
  EXPECT_DOUBLE_EQ(u::to_A_per_cm2(u::from_A_per_cm2(1e9)), 1e9);
  EXPECT_DOUBLE_EQ(u::to_ps(u::from_ps(42.0)), 42.0);
  EXPECT_DOUBLE_EQ(u::kelvin_to_celsius(u::celsius_to_kelvin(400.0)),
                   400.0);
}

TEST(Units, KnownConversions) {
  EXPECT_DOUBLE_EQ(u::from_nm(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(u::from_A_per_cm2(1e6), 1e10);
  EXPECT_DOUBLE_EQ(u::celsius_to_kelvin(400.0), 673.15);
}

TEST(Constants, QuantumValues) {
  // G0 = 77.48 uS, R0 = 12.906 kOhm, and they are reciprocal.
  EXPECT_NEAR(cnti::phys::kConductanceQuantum, 77.48e-6, 0.01e-6);
  EXPECT_NEAR(cnti::phys::kResistanceQuantum, 12906.4, 1.0);
  EXPECT_DOUBLE_EQ(
      cnti::phys::kConductanceQuantum * cnti::phys::kResistanceQuantum,
      1.0);
  // L_K C_Q duality: product = 1/vF^2.
  const double v2 = cnti::cntconst::kFermiVelocity *
                    cnti::cntconst::kFermiVelocity;
  EXPECT_NEAR(cnti::cntconst::kKineticInductancePerChannel *
                  cnti::cntconst::kQuantumCapacitancePerChannel * v2,
              1.0, 1e-12);
}

TEST(Table, AlignsAndCounts) {
  cnti::Table t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long header"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_THROW(t.add_row({"only one"}), cnti::PreconditionError);
}

TEST(Table, NumFormatsCompactly) {
  EXPECT_EQ(cnti::Table::num(1.5, 3), "1.5");
  EXPECT_EQ(cnti::Table::num(0.155, 3), "0.155");
}

TEST(Csv, WritesRowsAndValidates) {
  const std::string path = "/tmp/cnti_test_csv.csv";
  {
    cnti::CsvWriter csv(path, {"x", "y"});
    csv.add_row({1.0, 2.0});
    csv.add_row({3.0, 4.5});
    EXPECT_THROW(csv.add_row({1.0}), cnti::PreconditionError);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Error, ExpectsCarriesContext) {
  try {
    CNTI_EXPECTS(1 > 2, "one is not greater than two");
    FAIL() << "should have thrown";
  } catch (const cnti::PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 > 2"), std::string::npos);
    EXPECT_NE(msg.find("one is not greater"), std::string::npos);
    EXPECT_NE(msg.find("test_misc.cpp"), std::string::npos);
  }
}

TEST(SpiceIo, FullSuffixLadder) {
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("4t"), 4e12);
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("5g"), 5e9);
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("2n"), 2e-9);
  EXPECT_DOUBLE_EQ(cir::parse_spice_number("7p"), 7e-12);
}

TEST(Units, ScaleFactorsExact) {
  EXPECT_DOUBLE_EQ(u::from_ps(1.0), 1e-12);
  EXPECT_DOUBLE_EQ(u::to_mS(1e-3), 1.0);
  EXPECT_DOUBLE_EQ(u::from_nm(1e3), u::from_um(1.0));
}

TEST(SpiceIo, WriterEnforcesTypePrefix) {
  cir::Circuit ckt;
  const auto a = ckt.node("a");
  ckt.add_resistor("ln.seg0", a, 0, 1e3);  // name starts with 'l'!
  ckt.add_capacitor("load", a, 0, 1e-15);  // name starts with 'l'!
  const std::string text = cir::write_spice(ckt, "prefix test");
  auto parsed = cir::parse_spice(text);
  EXPECT_EQ(parsed.circuit.resistors().size(), 1u);
  EXPECT_EQ(parsed.circuit.capacitors().size(), 1u);
  EXPECT_TRUE(parsed.circuit.inductors().empty());
}

TEST(SpiceIo, MalformedCardsThrow) {
  EXPECT_THROW(cir::parse_spice("t\nR1 a 0\n.end\n"), cnti::ParseError);
  EXPECT_THROW(cir::parse_spice("t\nX1 a 0 1k\n.end\n"), cnti::ParseError);
  EXPECT_THROW(cir::parse_spice("t\nM1 d g s b NOTAMODEL W=1u\n.end\n"),
               cnti::ParseError);
  EXPECT_THROW(cir::parse_spice("t\n.tran 1p\n.end\n"), cnti::ParseError);
}

TEST(SpiceIo, CommentsAndEndHandling) {
  const std::string text = R"(title
* full comment
R1 a 0 1k ; trailing comment
.end
R2 b 0 2k
)";
  auto parsed = cir::parse_spice(text);
  EXPECT_EQ(parsed.circuit.resistors().size(), 1u);  // R2 after .end ignored
}

TEST(Measure, FallTimeAndPeak) {
  std::vector<double> t, v;
  for (int i = 0; i <= 100; ++i) {
    t.push_back(i * 1e-12);
    v.push_back(i <= 50 ? 1.0 - i / 50.0 : 0.0);  // 50 ps linear fall
  }
  const cir::TransientResult res(t, {std::vector<double>(101, 0.0), v});
  EXPECT_NEAR(cir::fall_time(res, 1, 0.0, 1.0), 40e-12, 1e-13);
  EXPECT_NEAR(cir::peak_voltage(res, 1), 1.0, 1e-12);
  EXPECT_NEAR(cir::peak_voltage(res, 1, 60e-12), 0.0, 1e-12);
}

TEST(Electrostatics, BetweenPlanesDoublesOverPlane) {
  const double c1 = cc::wire_over_plane_capacitance(5e-9, 25e-9, 2.5);
  const double c2 = cc::wire_between_planes_capacitance(5e-9, 50e-9, 2.5);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-15);
}

TEST(Electrostatics, RectangularLineHasPlateAndFringe) {
  // Wide plate limit: approaches eps w / h within the fringe constant.
  const double c = cc::rectangular_line_capacitance(1e-6, 50e-9, 100e-9,
                                                    3.9);
  const double plate = 3.9 * cnti::phys::kEpsilon0 * 1e-6 / 100e-9;
  EXPECT_GT(c, plate);
  EXPECT_LT(c, 2.0 * plate);
}

TEST(Via, BundleViaResistanceScalesWithHeight) {
  cc::ViaSpec shallow;
  shallow.height_m = 50e-9;
  cc::ViaSpec deep = shallow;
  deep.height_m = 200e-9;
  cc::BundleSpec bundle;
  bundle.tube_density_per_m2 = 3e17;
  const cc::BundleCntVia v1(shallow, bundle);
  const cc::BundleCntVia v2(deep, bundle);
  EXPECT_GT(v2.resistance(), v1.resistance());
  EXPECT_LT(v2.resistance(), 4.5 * v1.resistance());  // ballistic floor
}

TEST(Via, SingleCntMustFitHole) {
  cc::ViaSpec via;
  via.hole_diameter_m = 5e-9;
  cc::MwcntSpec tube;
  tube.outer_diameter_m = 7.5e-9;
  EXPECT_THROW(cc::SingleCntVia(via, tube), cnti::PreconditionError);
}

TEST(Bundle, RequiredDensityScalesWithCuConductance) {
  cc::SwcntSpec tube;
  // Better Cu (lower R) needs more tubes.
  const double d1 = cc::required_tube_density(1e3, 1e-6, 1e-15, tube);
  const double d2 = cc::required_tube_density(0.5e3, 1e-6, 1e-15, tube);
  EXPECT_NEAR(d2 / d1, 2.0, 1e-9);
}

TEST(Multiscale, DefectsRaiseResistance) {
  cc::MultiscaleInput clean;
  cc::MultiscaleInput dirty = clean;
  dirty.defect_spacing_um = 0.3;
  EXPECT_GT(cc::run_multiscale_flow(dirty).resistance_kohm,
            cc::run_multiscale_flow(clean).resistance_kohm);
}

TEST(Multiscale, RejectsBadInput) {
  cc::MultiscaleInput bad;
  bad.length_um = -1.0;
  EXPECT_THROW(cc::run_multiscale_flow(bad), cnti::PreconditionError);
}

TEST(Wafer, FinerPitchMoreDies) {
  cnti::numerics::Rng rng(3);
  cp::GrowthRecipe nominal;
  cp::WaferSpec coarse;
  coarse.die_pitch_mm = 40.0;
  cp::WaferSpec fine = coarse;
  fine.die_pitch_mm = 10.0;
  const cp::WaferMap w1(coarse, nominal, rng);
  const cp::WaferMap w2(fine, nominal, rng);
  EXPECT_GT(w2.dies().size(), 4u * w1.dies().size());
}

TEST(TestChip, CombsFailOnWideLinewidthBias) {
  const auto layout = cz::standard_test_layout();
  cz::TesterSpec tester;
  tester.resistance_noise_fraction = 0.0;
  cnti::numerics::Rng rng(9);
  // +35 nm bias: leakage 5 * exp(3.5) ~ 165 pA > 100 pA limit.
  const auto meas = cz::measure_die(layout, 35.0, tester, rng);
  bool comb_failed = false;
  for (const auto& m : meas) {
    if (m.unit == "pA" && !m.pass) comb_failed = true;
  }
  EXPECT_TRUE(comb_failed);
}

TEST(TestChip, ViaChainScalesWithCount) {
  const auto layout = cz::standard_test_layout();
  cz::TesterSpec tester;
  tester.resistance_noise_fraction = 0.0;
  cnti::numerics::Rng rng(10);
  const auto meas = cz::measure_die(layout, 0.0, tester, rng);
  double r100 = 0, r1000 = 0;
  for (const auto& m : meas) {
    if (m.structure == "viachain_100") r100 = m.value;
    if (m.structure == "viachain_1000") r1000 = m.value;
  }
  ASSERT_GT(r100, 0.0);
  EXPECT_NEAR(r1000 / r100, 10.0, 0.01);
}

}  // namespace
