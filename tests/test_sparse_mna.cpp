// Sparse circuit engine validation, in two halves:
//  1. SparseLu / CsrAssembler property tests — random diagonally-dominant
//     CSR systems and random RC-ladder MNA patterns are factored and
//     checked against the dense LuFactorization oracle to 1e-12; singular
//     inputs must throw NumericalError; refactorization must reuse the
//     symbolic analysis and survive pivot degradation by re-pivoting.
//  2. The dense-vs-sparse differential harness — every circuit scenario
//     (DC, dc_sweep, RC/RLC/MOSFET transients, pair and bus crosstalk) is
//     run through both MNA backends and the full node waveforms must agree
//     to 1e-8 relative.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuit/builders.hpp"
#include "circuit/crosstalk.hpp"
#include "circuit/dc_sweep.hpp"
#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "common/error.hpp"
#include "core/mwcnt_line.hpp"
#include "numerics/matrix.hpp"
#include "numerics/ordering.hpp"
#include "numerics/rng.hpp"
#include "numerics/sparse.hpp"
#include "numerics/sparse_lu.hpp"

namespace cir = cnti::circuit;
namespace cn = cnti::numerics;

namespace {

// ---------------------------------------------------------------------------
// SparseLu property tests against the dense oracle.
// ---------------------------------------------------------------------------

struct RandomSystem {
  cn::SparseMatrix sparse;
  cn::MatrixD dense;
  std::vector<double> b;
};

/// Random diagonally-dominant system with ~`offdiag_per_row` off-diagonal
/// entries per row, mirrored into a dense copy.
RandomSystem make_diag_dominant(cn::Rng& rng, std::size_t n,
                                int offdiag_per_row) {
  cn::SparseBuilder builder(n, n);
  cn::MatrixD dense(n, n);
  std::vector<double> row_sum(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 0; k < offdiag_per_row; ++k) {
      const auto j = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(n) - 1e-9));
      if (j == i) continue;
      const double v = rng.uniform(-1.0, 1.0);
      builder.add(i, j, v);
      dense(i, j) += v;
      row_sum[i] += std::abs(v);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (row_sum[i] + 1.0) * (rng.uniform() < 0.5 ? -1.0 : 1.0);
    builder.add(i, i, d);
    dense(i, i) += d;
  }
  RandomSystem out;
  out.sparse = builder.build();
  out.dense = std::move(dense);
  out.b.resize(n);
  for (auto& v : out.b) v = rng.uniform(-2.0, 2.0);
  return out;
}

/// Random RC-ladder MNA pattern: a resistor chain with random shunts and a
/// voltage-source branch row appended — the classic [[G, B], [B^T, 0]]
/// saddle-point shape with a structurally zero branch diagonal, which
/// forces SparseLu's partial pivoting off the natural order.
RandomSystem make_rc_ladder_mna(cn::Rng& rng, std::size_t nodes) {
  const std::size_t n = nodes + 1;  // + one vsource branch current
  cn::SparseBuilder builder(n, n);
  cn::MatrixD dense(n, n);
  const auto add = [&](std::size_t r, std::size_t c, double v) {
    builder.add(r, c, v);
    dense(r, c) += v;
  };
  for (std::size_t i = 0; i + 1 < nodes; ++i) {
    const double g = 1.0 / rng.uniform(0.5, 50.0);  // series resistor
    add(i, i, g);
    add(i + 1, i + 1, g);
    add(i, i + 1, -g);
    add(i + 1, i, -g);
  }
  for (std::size_t i = 0; i < nodes; ++i) {
    if (rng.uniform() < 0.5) add(i, i, 1.0 / rng.uniform(1.0, 100.0));
    add(i, i, 1e-12);  // gmin floor, as the MNA engine stamps it
  }
  // Voltage source at node 0: B columns/rows, zero branch diagonal.
  add(0, nodes, 1.0);
  add(nodes, 0, 1.0);
  RandomSystem out;
  out.sparse = builder.build();
  out.dense = std::move(dense);
  out.b.assign(n, 0.0);
  out.b[nodes] = rng.uniform(0.5, 2.0);  // source voltage
  return out;
}

void expect_matches_dense(const RandomSystem& sys, double tol) {
  const std::vector<double> x_sparse = cn::solve_sparse(sys.sparse, sys.b);
  const std::vector<double> x_dense =
      cn::LuFactorization<double>(sys.dense).solve(sys.b);
  double scale = 1.0;
  for (const double v : x_dense) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < x_dense.size(); ++i) {
    EXPECT_NEAR(x_sparse[i], x_dense[i], tol * scale) << "component " << i;
  }
}

TEST(SparseLu, FactorsRandomDiagonallyDominantSystems) {
  cn::Rng rng(42);
  for (int trial = 0; trial < 40; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform(5.0, 120.0));
    const int offdiag = 1 + trial % 6;
    const RandomSystem sys = make_diag_dominant(rng, n, offdiag);
    expect_matches_dense(sys, 1e-12);
  }
}

TEST(SparseLu, FactorsRandomRcLadderMnaPatterns) {
  cn::Rng rng(2018);
  for (int trial = 0; trial < 40; ++trial) {
    const auto nodes = static_cast<std::size_t>(rng.uniform(3.0, 90.0));
    const RandomSystem sys = make_rc_ladder_mna(rng, nodes);
    expect_matches_dense(sys, 1e-12);
  }
}

TEST(SparseLu, SolvesMultipleRhsFromOneFactorization) {
  cn::Rng rng(7);
  const RandomSystem sys = make_diag_dominant(rng, 60, 4);
  cn::SparseLu lu;
  lu.factorize(sys.sparse);
  const cn::LuFactorization<double> dense_lu(sys.dense);
  for (int k = 0; k < 5; ++k) {
    std::vector<double> b(60);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    const auto xs = lu.solve(b);
    const auto xd = dense_lu.solve(b);
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_NEAR(xs[i], xd[i], 1e-12);
    }
  }
}

TEST(SparseLu, NumericallySingularThrows) {
  cn::SparseBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 1.0);  // rank 1
  cn::SparseLu lu;
  EXPECT_THROW(lu.factorize(builder.build()), cnti::NumericalError);
}

TEST(SparseLu, StructurallySingularThrows) {
  cn::SparseBuilder builder(3, 3);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 3.0);  // column 2 is empty
  builder.add(0, 1, 1.0);
  cn::SparseLu lu;
  EXPECT_THROW(lu.factorize(builder.build()), cnti::NumericalError);
}

TEST(SparseLu, ZeroPivotColumnThrows) {
  // Column 0 exists structurally but every entry is numerically zero.
  cn::SparseBuilder builder(2, 2);
  builder.add(0, 0, 0.0);
  builder.add(1, 0, 0.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 1, 2.0);
  cn::SparseLu lu;
  EXPECT_THROW(lu.factorize(builder.build()), cnti::NumericalError);
}

TEST(SparseLu, RefactorizationReusesSymbolicAnalysis) {
  cn::Rng rng(11);
  RandomSystem sys = make_diag_dominant(rng, 50, 3);
  cn::SparseLu lu;
  lu.factorize(sys.sparse);
  EXPECT_FALSE(lu.reused_symbolic());

  // Same pattern, new values: must take the numeric-only path and still
  // agree with a dense factorization of the new values.
  cn::MatrixD dense(50, 50);
  auto& vals = sys.sparse.values();
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t k = sys.sparse.row_ptr()[r];
         k < sys.sparse.row_ptr()[r + 1]; ++k) {
      vals[k] *= rng.uniform(0.5, 1.5);
      dense(r, sys.sparse.col_indices()[k]) = vals[k];
    }
  }
  lu.factorize(sys.sparse);
  EXPECT_TRUE(lu.reused_symbolic());
  const auto xs = lu.solve(sys.b);
  const auto xd = cn::LuFactorization<double>(dense).solve(sys.b);
  double scale = 1.0;
  for (const double v : xd) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(xs[i], xd[i], 1e-12 * scale);
  }

  // A different pattern forces a fresh symbolic analysis.
  const RandomSystem other = make_diag_dominant(rng, 50, 5);
  lu.factorize(other.sparse);
  EXPECT_FALSE(lu.reused_symbolic());
}

TEST(SparseLu, RecoversAfterSingularFactorizationThrow) {
  // A successful factorization followed by a singular same-pattern update
  // must throw — and must NOT leave the object in a half-analyzed state:
  // solve() must reject it, and a later factorize() with good values must
  // rebuild from scratch and produce correct results.
  cn::SparseBuilder builder(2, 2);
  builder.add(0, 0, 4.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 3.0);
  cn::SparseMatrix a = builder.build();
  cn::SparseLu lu;
  lu.factorize(a);

  cn::SparseMatrix singular = a;
  for (auto& v : singular.values()) v = 1.0;  // rank 1, same pattern
  EXPECT_THROW(lu.factorize(singular), cnti::NumericalError);
  EXPECT_FALSE(lu.analyzed());
  EXPECT_THROW(lu.solve({1.0, 2.0}), cnti::PreconditionError);

  lu.factorize(a);
  const auto x = lu.solve({5.0, 4.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);  // [[4,1],[1,3]] x = [5,4] -> [1,1]
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SparseLu, RefactorizationRepivotsOnDegradedPivot) {
  // First factorization pivots on the dominant (0,0). The value update
  // shrinks that entry to 1e-14, so the reused pivot fails the threshold
  // test and factorize() must silently fall back to full re-pivoting.
  cn::SparseBuilder builder(2, 2);
  builder.add(0, 0, 10.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 1.0);
  cn::SparseMatrix a = builder.build();
  cn::SparseLu lu;
  lu.factorize(a);

  cn::MatrixD dense(2, 2);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      if (r == 0 && a.col_indices()[k] == 0) a.values()[k] = 1e-14;
      dense(r, a.col_indices()[k]) = a.values()[k];
    }
  }
  lu.factorize(a);
  EXPECT_FALSE(lu.reused_symbolic());  // fell back to full factorization
  const std::vector<double> b = {1.0, 2.0};
  const auto xs = lu.solve(b);
  const auto xd = cn::LuFactorization<double>(dense).solve(b);
  EXPECT_NEAR(xs[0], xd[0], 1e-10);
  EXPECT_NEAR(xs[1], xd[1], 1e-10);
}

// ---------------------------------------------------------------------------
// Supernodal / blocked elimination path.
// ---------------------------------------------------------------------------

TEST(SupernodalLu, BlockedMatchesScalarOnRandomSystems) {
  // The blocked kernels must agree with the scalar engine to 1e-10 across
  // random diagonally-dominant systems and saddle-point MNA ladders, on
  // both the fresh factorization and a same-pattern numeric replay.
  cn::Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    RandomSystem sys = make_diag_dominant(rng, 300, 4);
    cn::SparseLu scalar;
    scalar.set_factor_mode(cn::FactorMode::kScalar);
    cn::SparseLu blocked;
    blocked.set_factor_mode(cn::FactorMode::kSupernodal);
    for (int pass = 0; pass < 2; ++pass) {
      if (pass == 1) {
        for (auto& v : sys.sparse.values()) v *= rng.uniform(0.8, 1.2);
      }
      scalar.factorize(sys.sparse);
      blocked.factorize(sys.sparse);
      EXPECT_TRUE(blocked.blocked_active());
      EXPECT_GT(blocked.supernodes(), 0u);
      const auto xs = scalar.solve(sys.b);
      const auto xb = blocked.solve(sys.b);
      double scale = 1.0;
      for (const double v : xs) scale = std::max(scale, std::abs(v));
      for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_NEAR(xb[i], xs[i], 1e-10 * scale)
            << "trial " << trial << " pass " << pass << " component " << i;
      }
    }
  }
  for (int trial = 0; trial < 3; ++trial) {
    const RandomSystem sys = make_rc_ladder_mna(rng, 200);
    cn::SparseLu blocked;
    blocked.set_factor_mode(cn::FactorMode::kSupernodal);
    blocked.factorize(sys.sparse);
    expect_matches_dense(sys, 1e-10);
    const auto xb = blocked.solve(sys.b);
    const auto xd = cn::LuFactorization<double>(sys.dense).solve(sys.b);
    double scale = 1.0;
    for (const double v : xd) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < xd.size(); ++i) {
      EXPECT_NEAR(xb[i], xd[i], 1e-10 * scale) << "component " << i;
    }
  }
}

TEST(SupernodalLu, RefactorizationReusesPartition) {
  cn::Rng rng(19);
  RandomSystem sys = make_diag_dominant(rng, 400, 4);
  cn::SparseLu lu;
  lu.set_factor_mode(cn::FactorMode::kSupernodal);
  lu.factorize(sys.sparse);
  ASSERT_TRUE(lu.blocked_active());
  const std::size_t partition = lu.supernodes();
  const std::size_t panel_nnz = lu.blocked_panel_nnz();

  for (auto& v : sys.sparse.values()) v *= rng.uniform(0.9, 1.1);
  lu.factorize(sys.sparse);
  EXPECT_TRUE(lu.reused_symbolic());
  EXPECT_TRUE(lu.blocked_active());
  EXPECT_EQ(lu.supernodes(), partition);
  EXPECT_EQ(lu.blocked_panel_nnz(), panel_nnz);
  EXPECT_GT(lu.last_gemm_flops(), 0u);
}

TEST(SupernodalLu, SetColumnOrderingInvalidatesPartition) {
  cn::Rng rng(23);
  const RandomSystem sys = make_diag_dominant(rng, 300, 4);
  cn::SparseLu lu;
  lu.set_factor_mode(cn::FactorMode::kSupernodal);
  lu.factorize(sys.sparse);
  ASSERT_TRUE(lu.blocked_active());

  // Installing a new column ordering retires the stored partition with
  // the symbolic analysis; the next factorize() rebuilds both fresh and
  // still solves correctly under the new permutation.
  lu.set_column_ordering(cn::amd_ordering(sys.sparse));
  EXPECT_FALSE(lu.blocked_active());
  lu.factorize(sys.sparse);
  EXPECT_FALSE(lu.reused_symbolic());
  EXPECT_TRUE(lu.blocked_active());
  const auto xb = lu.solve(sys.b);
  const auto xd = cn::LuFactorization<double>(sys.dense).solve(sys.b);
  double scale = 1.0;
  for (const double v : xd) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < xd.size(); ++i) {
    EXPECT_NEAR(xb[i], xd[i], 1e-10 * scale) << "component " << i;
  }
}

TEST(SupernodalLu, PatternChangeInvalidatesPartition) {
  cn::Rng rng(29);
  const RandomSystem first = make_diag_dominant(rng, 300, 3);
  const RandomSystem second = make_diag_dominant(rng, 250, 5);
  cn::SparseLu lu;
  lu.set_factor_mode(cn::FactorMode::kSupernodal);
  lu.factorize(first.sparse);
  ASSERT_TRUE(lu.blocked_active());

  // A different pattern must re-run detection, not replay stale panels.
  lu.factorize(second.sparse);
  EXPECT_FALSE(lu.reused_symbolic());
  EXPECT_TRUE(lu.blocked_active());
  const auto xb = lu.solve(second.b);
  const auto xd =
      cn::LuFactorization<double>(second.dense).solve(second.b);
  double scale = 1.0;
  for (const double v : xd) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < xd.size(); ++i) {
    EXPECT_NEAR(xb[i], xd[i], 1e-10 * scale) << "component " << i;
  }
}

TEST(SupernodalLu, RepivotFallbackReproducesScalarBitwise) {
  // A blocked replay whose in-supernode pivot degrades past the growth
  // bound falls back to a fresh scalar factorization and stays scalar for
  // the pattern — the contract is *bitwise* identity with the pure scalar
  // engine (given the same column ordering), not just tolerance-level
  // agreement.
  cn::SparseBuilder builder(2, 2);
  builder.add(0, 0, 10.0);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(1, 1, 1.0);
  cn::SparseMatrix a = builder.build();
  cn::SparseLu lu;
  lu.set_factor_mode(cn::FactorMode::kSupernodal);
  // Width-1 supernodes: a degraded pivot's rescue row then lives outside
  // its own panel, so the in-supernode re-pivot cannot absorb it and the
  // replay must take the scalar fallback. (With the default amalgamation
  // this 2x2 would fuse into one panel and re-pivot internally.)
  cn::SupernodeSettings narrow;
  narrow.max_cols = 1;
  lu.set_supernode_settings(narrow);
  lu.factorize(a);
  ASSERT_TRUE(lu.blocked_active());

  for (std::size_t k = a.row_ptr()[0]; k < a.row_ptr()[1]; ++k) {
    if (a.col_indices()[k] == 0) a.values()[k] = 1e-14;
  }
  lu.factorize(a);
  EXPECT_FALSE(lu.reused_symbolic());  // fell back to full factorization
  EXPECT_FALSE(lu.blocked_active());   // ... and stays scalar now

  cn::SparseLu ref;
  ref.set_factor_mode(cn::FactorMode::kScalar);
  ref.set_column_ordering(lu.column_ordering());
  ref.factorize(a);
  const std::vector<double> b = {1.0, 2.0};
  const auto x_fallback = lu.solve(b);
  const auto x_scalar = ref.solve(b);
  ASSERT_EQ(x_fallback.size(), x_scalar.size());
  for (std::size_t i = 0; i < x_scalar.size(); ++i) {
    EXPECT_EQ(x_fallback[i], x_scalar[i]) << "component " << i;
  }

  // Subsequent same-pattern replays stay on (bitwise) scalar ground too.
  for (auto& v : a.values()) v *= 2.0;
  lu.factorize(a);
  ref.factorize(a);
  EXPECT_TRUE(lu.reused_symbolic());
  const auto y_fallback = lu.solve(b);
  const auto y_scalar = ref.solve(b);
  for (std::size_t i = 0; i < y_scalar.size(); ++i) {
    EXPECT_EQ(y_fallback[i], y_scalar[i]) << "component " << i;
  }
}

TEST(SupernodalLu, AutoRoutesBySizeAndPartitionWidth) {
  cn::Rng rng(31);
  // Below the size gate kAuto stays scalar.
  const RandomSystem small = make_diag_dominant(rng, 60, 3);
  cn::SparseLu lu_small;  // FactorMode::kAuto is the default
  EXPECT_EQ(lu_small.factor_mode(), cn::FactorMode::kAuto);
  lu_small.factorize(small.sparse);
  EXPECT_FALSE(lu_small.blocked_active());

  // With the size gate lowered, the same kind of system engages the
  // blocked path (leaf amalgamation gives a wide-enough partition).
  const RandomSystem big = make_diag_dominant(rng, 800, 3);
  cn::SparseLu lu_big;
  cn::SupernodeSettings settings;
  settings.auto_min_unknowns = 64;
  lu_big.set_supernode_settings(settings);
  lu_big.factorize(big.sparse);
  EXPECT_TRUE(lu_big.blocked_active());
  const auto xb = lu_big.solve(big.b);
  const auto xd = cn::LuFactorization<double>(big.dense).solve(big.b);
  double scale = 1.0;
  for (const double v : xd) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < xd.size(); ++i) {
    EXPECT_NEAR(xb[i], xd[i], 1e-10 * scale) << "component " << i;
  }
}

// ---------------------------------------------------------------------------
// CsrAssembler: pattern freeze + stamp-slot replay.
// ---------------------------------------------------------------------------

TEST(CsrAssembler, ReplayAccumulatesIntoFrozenPattern) {
  cn::CsrAssembler assembler(3);
  const auto stamp = [&](double scale) {
    assembler.begin();
    assembler.add(0, 0, 2.0 * scale);
    assembler.add(1, 1, 3.0 * scale);
    assembler.add(0, 1, -1.0 * scale);
    assembler.add(0, 0, 0.5 * scale);  // duplicate stamp, must sum
    assembler.add(2, 2, 1.0 * scale);
    return assembler.end();
  };
  const cn::SparseMatrix& first = stamp(1.0);
  EXPECT_TRUE(assembler.frozen());
  EXPECT_EQ(first.nnz(), 4u);  // duplicates collapse into one slot
  EXPECT_DOUBLE_EQ(first.at(0, 0), 2.5);

  const cn::SparseMatrix& second = stamp(2.0);
  EXPECT_DOUBLE_EQ(second.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(second.at(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(second.at(1, 1), 6.0);
  EXPECT_EQ(second.nnz(), 4u);  // pattern unchanged
}

TEST(CsrAssembler, DivergingStampStreamThrows) {
  cn::CsrAssembler assembler(2);
  assembler.begin();
  assembler.add(0, 0, 1.0);
  assembler.add(1, 1, 1.0);
  assembler.end();

  assembler.begin();
  EXPECT_THROW(assembler.add(1, 0, 1.0), cnti::PreconditionError);
}

// ---------------------------------------------------------------------------
// Differential harness: every scenario through both MNA backends.
// ---------------------------------------------------------------------------

constexpr double kWaveformRelTol = 1e-8;

cir::MnaOptions dense_opts() {
  cir::MnaOptions o;
  o.solver = cir::SolverKind::kDense;
  return o;
}

cir::MnaOptions sparse_opts() {
  cir::MnaOptions o;
  o.solver = cir::SolverKind::kSparse;
  return o;
}

/// Runs the transient with both backends and requires every node waveform
/// to agree to kWaveformRelTol relative to the largest voltage seen.
void expect_transient_agreement(const cir::Circuit& ckt,
                                cir::TransientOptions opt) {
  opt.mna = dense_opts();
  const cir::TransientResult dense = cir::simulate_transient(ckt, opt);
  opt.mna = sparse_opts();
  const cir::TransientResult sparse = cir::simulate_transient(ckt, opt);

  ASSERT_EQ(dense.steps(), sparse.steps());
  double scale = 0.0;
  for (cir::NodeId n = 0; n <= ckt.node_count(); ++n) {
    for (const double v : dense.voltage(n)) {
      scale = std::max(scale, std::abs(v));
    }
  }
  scale = std::max(scale, 1e-6);
  double worst = 0.0;
  for (cir::NodeId n = 0; n <= ckt.node_count(); ++n) {
    const auto& vd = dense.voltage(n);
    const auto& vs = sparse.voltage(n);
    for (std::size_t i = 0; i < vd.size(); ++i) {
      worst = std::max(worst, std::abs(vd[i] - vs[i]));
    }
  }
  EXPECT_LE(worst / scale, kWaveformRelTol)
      << "worst abs divergence " << worst << " over scale " << scale;
}

cir::Circuit make_rc_ladder(int segments, double r_ohm, double c_f) {
  cir::Circuit ckt;
  cir::PulseWave pulse;
  pulse.v1 = 0.0;
  pulse.v2 = 1.0;
  pulse.delay_s = 10e-12;
  pulse.rise_s = 10e-12;
  pulse.fall_s = 10e-12;
  pulse.width_s = 1.0;
  pulse.period_s = 2.0;
  const auto in = ckt.node("in");
  ckt.add_vsource("vin", in, 0, pulse);
  cir::NodeId prev = in;
  for (int s = 0; s < segments; ++s) {
    const std::string is = std::to_string(s);
    const auto n = ckt.node("n" + is);
    ckt.add_resistor("r" + is, prev, n, r_ohm);
    ckt.add_capacitor("c" + is, n, 0, c_f);
    prev = n;
  }
  return ckt;
}

TEST(DenseSparseDifferential, RcLadderStepResponse) {
  const cir::Circuit ckt = make_rc_ladder(40, 150.0, 2e-15);
  cir::TransientOptions opt;
  opt.t_stop_s = 1.2e-9;
  opt.dt_s = 1e-12;
  expect_transient_agreement(ckt, opt);
}

TEST(DenseSparseDifferential, RcLadderBackwardEuler) {
  const cir::Circuit ckt = make_rc_ladder(25, 200.0, 1e-15);
  cir::TransientOptions opt;
  opt.t_stop_s = 0.8e-9;
  opt.dt_s = 1e-12;
  opt.integrator = cir::Integrator::kBackwardEuler;
  expect_transient_agreement(ckt, opt);
}

TEST(DenseSparseDifferential, RlcLineWithInductors) {
  cir::Circuit ckt;
  cir::PulseWave pulse;
  pulse.v1 = 0.0;
  pulse.v2 = 1.0;
  pulse.delay_s = 20e-12;
  pulse.rise_s = 20e-12;
  pulse.fall_s = 20e-12;
  pulse.width_s = 1.0;
  pulse.period_s = 2.0;
  const auto in = ckt.node("in");
  ckt.add_vsource("vin", in, 0, pulse);
  cir::NodeId prev = in;
  for (int s = 0; s < 12; ++s) {
    const std::string is = std::to_string(s);
    const auto mid = ckt.node("m" + is);
    const auto n = ckt.node("n" + is);
    ckt.add_resistor("r" + is, prev, mid, 50.0);
    ckt.add_inductor("l" + is, mid, n, 10e-12);
    ckt.add_capacitor("c" + is, n, 0, 5e-15);
    prev = n;
  }
  cir::TransientOptions opt;
  opt.t_stop_s = 1e-9;
  opt.dt_s = 0.5e-12;
  expect_transient_agreement(ckt, opt);
}

TEST(DenseSparseDifferential, CurrentSourceDrivenGrid) {
  cir::Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  const auto c = ckt.node("c");
  ckt.add_isource("i1", 0, a, cir::DcWave{1e-3});
  ckt.add_resistor("r1", a, b, 1e3);
  ckt.add_resistor("r2", b, c, 2e3);
  ckt.add_resistor("r3", c, 0, 3e3);
  ckt.add_resistor("r4", a, c, 4e3);
  ckt.add_capacitor("c1", b, 0, 1e-15);
  ckt.add_capacitor("c2", c, 0, 2e-15);
  cir::TransientOptions opt;
  opt.t_stop_s = 0.1e-9;
  opt.dt_s = 0.5e-12;
  expect_transient_agreement(ckt, opt);
}

TEST(DenseSparseDifferential, MosfetInverterChainTransient) {
  cir::Fig11Options opt;
  opt.line = cnti::core::make_paper_mwcnt(10, 4.0, 50e3).rlc();
  opt.length_m = 100e-6;
  opt.segments = 10;
  const cir::Fig11Circuit bench = cir::build_fig11_benchmark(opt);
  cir::TransientOptions topt;
  topt.t_stop_s = bench.pulse_period_s;
  topt.dt_s = topt.t_stop_s / 1500;
  expect_transient_agreement(bench.ckt, topt);
}

TEST(DenseSparseDifferential, DcOperatingPoint) {
  cir::Fig11Options fopt;
  fopt.line = cnti::core::make_paper_mwcnt(10, 4.0, 50e3).rlc();
  fopt.length_m = 100e-6;
  fopt.segments = 8;
  const cir::Fig11Circuit bench = cir::build_fig11_benchmark(fopt);
  const cir::DcResult dense = cir::solve_dc(bench.ckt, 0.0, dense_opts());
  const cir::DcResult sparse = cir::solve_dc(bench.ckt, 0.0, sparse_opts());
  ASSERT_EQ(dense.node_voltages.size(), sparse.node_voltages.size());
  for (std::size_t n = 0; n < dense.node_voltages.size(); ++n) {
    EXPECT_NEAR(dense.node_voltages[n], sparse.node_voltages[n], 1e-8);
  }
  ASSERT_EQ(dense.vsource_currents.size(), sparse.vsource_currents.size());
  for (std::size_t k = 0; k < dense.vsource_currents.size(); ++k) {
    EXPECT_NEAR(dense.vsource_currents[k], sparse.vsource_currents[k], 1e-8);
  }
}

TEST(DenseSparseDifferential, InverterVtcDcSweep) {
  cir::Circuit ckt;
  const cir::Technology45nm tech;
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_vsource("vsupply", vdd, 0, cir::DcWave{tech.vdd_v});
  ckt.add_vsource("vi", in, 0, cir::DcWave{0.0});
  cir::add_inverter(ckt, "inv", in, out, vdd, tech);
  const auto dense =
      cir::dc_sweep(ckt, "vi", 0.0, tech.vdd_v, 41, out, dense_opts());
  const auto sparse =
      cir::dc_sweep(ckt, "vi", 0.0, tech.vdd_v, 41, out, sparse_opts());
  ASSERT_EQ(dense.output_v.size(), sparse.output_v.size());
  for (std::size_t i = 0; i < dense.output_v.size(); ++i) {
    EXPECT_NEAR(dense.output_v[i], sparse.output_v[i], 1e-8);
  }
}

TEST(DenseSparseDifferential, CrosstalkPairNoisePeak) {
  cir::CrosstalkConfig cfg;
  cfg.victim = cnti::core::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  cfg.aggressor = cfg.victim;
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 50e-6;
  cfg.segments = 12;
  cfg.mna = dense_opts();
  const cir::CrosstalkResult dense = cir::analyze_crosstalk(cfg, 800);
  cfg.mna = sparse_opts();
  const cir::CrosstalkResult sparse = cir::analyze_crosstalk(cfg, 800);
  EXPECT_NEAR(dense.peak_noise_v, sparse.peak_noise_v,
              1e-8 * std::max(1.0, std::abs(dense.peak_noise_v)));
  EXPECT_NEAR(dense.aggressor_delay_s, sparse.aggressor_delay_s,
              1e-8 * dense.aggressor_delay_s + 1e-18);
}

TEST(DenseSparseDifferential, CoupledBusWorstVictim) {
  cir::BusConfig cfg;
  cfg.line = cnti::core::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 50e-6;
  cfg.lines = 5;
  cfg.segments = 10;
  // Off-centre aggressor: its two neighbours (edge line 0, interior line
  // 2) are structurally different, so the worst-victim argmax is not a
  // floating-point near-tie that the two backends could resolve
  // differently.
  cfg.aggressor = 1;
  cfg.mna = dense_opts();
  const cir::BusCrosstalkResult dense = cir::analyze_bus_crosstalk(cfg, 600);
  cfg.mna = sparse_opts();
  const cir::BusCrosstalkResult sparse = cir::analyze_bus_crosstalk(cfg, 600);
  EXPECT_EQ(dense.worst_victim, sparse.worst_victim);
  EXPECT_EQ(dense.unknowns, sparse.unknowns);
  EXPECT_NEAR(dense.peak_noise_v, sparse.peak_noise_v,
              1e-8 * std::max(1.0, std::abs(dense.peak_noise_v)));
  // A neighbour of the aggressor must be the worst victim.
  EXPECT_EQ(std::abs(dense.worst_victim - cfg.aggressor), 1);
}

TEST(DenseSparseDifferential, AutoRoutingMatchesExplicitBackends) {
  // Small circuit (below threshold -> dense) and a forced-threshold run
  // (sparse) must both agree with the explicit backends bit-for-policy.
  const cir::Circuit ckt = make_rc_ladder(30, 100.0, 1e-15);
  cir::TransientOptions opt;
  opt.t_stop_s = 0.5e-9;
  opt.dt_s = 1e-12;

  opt.mna = cir::MnaOptions{};  // kAuto, default threshold: dense here
  const auto auto_small = cir::simulate_transient(ckt, opt);
  opt.mna = dense_opts();
  const auto dense = cir::simulate_transient(ckt, opt);

  cir::MnaOptions auto_low;
  auto_low.sparse_threshold = 4;  // force the sparse path through kAuto
  opt.mna = auto_low;
  const auto auto_sparse = cir::simulate_transient(ckt, opt);
  opt.mna = sparse_opts();
  const auto sparse = cir::simulate_transient(ckt, opt);

  const auto last = ckt.node_count();
  for (std::size_t i = 0; i < auto_small.steps(); ++i) {
    EXPECT_DOUBLE_EQ(auto_small.voltage(last)[i], dense.voltage(last)[i]);
    EXPECT_DOUBLE_EQ(auto_sparse.voltage(last)[i], sparse.voltage(last)[i]);
  }
}

TEST(DenseSparseDifferential, AmdAndNaturalOrderingAgreeOnCoupledBus) {
  // The fill-reducing ordering changes the factorization's elimination
  // order, not the solution: a bus transient under kAmd (the default) and
  // kNatural must agree to the differential tolerance, and both must
  // match the dense oracle.
  cir::BusConfig cfg;
  cfg.line = cnti::core::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 50e-6;
  cfg.lines = 6;
  cfg.segments = 16;
  cfg.aggressor = 2;

  cfg.mna = sparse_opts();  // ordering defaults to kAmd
  const cir::BusCrosstalkResult amd = cir::analyze_bus_crosstalk(cfg, 400);
  cfg.mna.ordering = cir::OrderingKind::kNatural;
  const cir::BusCrosstalkResult nat = cir::analyze_bus_crosstalk(cfg, 400);
  cfg.mna = dense_opts();
  const cir::BusCrosstalkResult dense = cir::analyze_bus_crosstalk(cfg, 400);

  EXPECT_EQ(amd.worst_victim, nat.worst_victim);
  EXPECT_EQ(amd.worst_victim, dense.worst_victim);
  EXPECT_NEAR(amd.peak_noise_v, nat.peak_noise_v,
              1e-8 * std::max(1.0, std::abs(nat.peak_noise_v)));
  EXPECT_NEAR(amd.peak_noise_v, dense.peak_noise_v,
              1e-8 * std::max(1.0, std::abs(dense.peak_noise_v)));
  EXPECT_NEAR(amd.aggressor_delay_s, dense.aggressor_delay_s,
              1e-8 * dense.aggressor_delay_s + 1e-18);
}

TEST(DenseSparseDifferential, ScalarAndSupernodalFactorAgreeOnCoupledBus) {
  // The elimination kernel is a numerics-only choice: a bus transient
  // through the scalar Gilbert–Peierls replay and through the supernodal
  // panels (forced on, ignoring the kAuto size gate) must agree to the
  // differential tolerance, and both must match the dense oracle.
  cir::BusConfig cfg;
  cfg.line = cnti::core::make_paper_mwcnt(10, 4.0, 20e3).rlc();
  cfg.coupling_cap_per_m = 30e-12;
  cfg.length_m = 50e-6;
  cfg.lines = 6;
  cfg.segments = 16;
  cfg.aggressor = 2;

  cfg.mna = sparse_opts();
  cfg.mna.factor = cir::FactorKind::kScalar;
  const cir::BusCrosstalkResult scalar = cir::analyze_bus_crosstalk(cfg, 400);
  cfg.mna.factor = cir::FactorKind::kSupernodal;
  const cir::BusCrosstalkResult blocked =
      cir::analyze_bus_crosstalk(cfg, 400);
  cfg.mna = dense_opts();
  const cir::BusCrosstalkResult dense = cir::analyze_bus_crosstalk(cfg, 400);

  EXPECT_EQ(blocked.worst_victim, scalar.worst_victim);
  EXPECT_EQ(blocked.worst_victim, dense.worst_victim);
  EXPECT_NEAR(blocked.peak_noise_v, scalar.peak_noise_v,
              1e-8 * std::max(1.0, std::abs(scalar.peak_noise_v)));
  EXPECT_NEAR(blocked.peak_noise_v, dense.peak_noise_v,
              1e-8 * std::max(1.0, std::abs(dense.peak_noise_v)));
  EXPECT_NEAR(blocked.aggressor_delay_s, dense.aggressor_delay_s,
              1e-8 * dense.aggressor_delay_s + 1e-18);
}

}  // namespace
