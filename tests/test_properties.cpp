// Parameterized property suites (TEST_P): invariants checked across
// swept parameter spaces rather than at hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "atomistic/bandstructure.hpp"
#include "atomistic/landauer.hpp"
#include "atomistic/negf.hpp"
#include "atomistic/swcnt_geometry.hpp"
#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "circuit/waveform.hpp"
#include "common/constants.hpp"
#include "core/mwcnt_line.hpp"
#include "core/repeater.hpp"
#include "materials/composite.hpp"
#include "materials/copper.hpp"
#include "numerics/rng.hpp"
#include "process/cvd.hpp"
#include "tcad/field_solver.hpp"
#include "thermal/em.hpp"
#include "thermal/heat1d.hpp"

namespace ca = cnti::atomistic;
namespace cc = cnti::core;
namespace cm = cnti::materials;
namespace cir = cnti::circuit;
namespace ct = cnti::tcad;
namespace th = cnti::thermal;
namespace cp = cnti::process;
namespace cn = cnti::numerics;

namespace {

// ---------------------------------------------------------------------------
// Chirality invariants across tube families.
// ---------------------------------------------------------------------------

class ChiralityProperties
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ChiralityProperties, GeometricIdentities) {
  const auto [n, m] = GetParam();
  const ca::Chirality ch(n, m);
  // d = |C_h| / pi.
  EXPECT_NEAR(ch.diameter(), ch.circumference() / M_PI, 1e-18);
  // |T| = sqrt(3) |C_h| / d_R.
  EXPECT_NEAR(ch.translation_length(),
              std::sqrt(3.0) * ch.circumference() / ch.d_r(), 1e-18);
  // T is orthogonal to C_h: t1*(2n+m) + t2*(2m+n) == 0 (lattice algebra).
  EXPECT_EQ(ch.t1() * (2 * n + m) + ch.t2() * (2 * m + n), 0);
  // Atom count is positive and even.
  EXPECT_GT(ch.atoms_per_cell(), 0);
  EXPECT_EQ(ch.atoms_per_cell() % 2, 0);
}

TEST_P(ChiralityProperties, MetallicityMatchesBandGap) {
  const auto [n, m] = GetParam();
  const ca::Chirality ch(n, m);
  const ca::BandStructure bands(ch);
  if (ch.is_metallic()) {
    EXPECT_NEAR(bands.band_gap(), 0.0, 1e-3) << ch.label();
  } else {
    EXPECT_GT(bands.band_gap(), 0.05) << ch.label();
  }
}

TEST_P(ChiralityProperties, ModeCountElectronHoleSymmetric) {
  const auto [n, m] = GetParam();
  const ca::BandStructure bands(ca::Chirality(n, m));
  for (double e : {0.3, 0.9, 1.7, 2.5}) {
    EXPECT_EQ(bands.count_modes(e), bands.count_modes(-e));
  }
}

TEST_P(ChiralityProperties, LatticeIsThreeCoordinated) {
  const auto [n, m] = GetParam();
  const ca::Chirality ch(n, m);
  // Constructor asserts 3-coordination and the atom count internally.
  const ca::TubeHamiltonian h(ch);
  EXPECT_EQ(h.atoms_per_cell(), ch.atoms_per_cell());
}

INSTANTIATE_TEST_SUITE_P(
    TubeFamilies, ChiralityProperties,
    ::testing::Values(std::pair{4, 4}, std::pair{7, 7}, std::pair{10, 10},
                      std::pair{9, 0}, std::pair{10, 0}, std::pair{13, 0},
                      std::pair{6, 3}, std::pair{7, 4}, std::pair{8, 2},
                      std::pair{9, 6}),
    [](const auto& p) {
      return "n" + std::to_string(p.param.first) + "m" +
             std::to_string(p.param.second);
    });

// ---------------------------------------------------------------------------
// NEGF == zone-folding equivalence for pristine devices.
// ---------------------------------------------------------------------------

class NegfEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(NegfEquivalence, TransmissionEqualsModeCount) {
  const auto [n, m] = GetParam();
  const ca::Chirality ch(n, m);
  const ca::TubeHamiltonian h(ch);
  const ca::BandStructure bands(ch);
  const ca::NegfSolver solver(h, 1);
  for (double e : {0.15, 0.7, 1.3}) {
    EXPECT_NEAR(solver.transmission(e), bands.count_modes(e), 0.03)
        << ch.label() << " at E = " << e;
  }
}

TEST_P(NegfEquivalence, VacancyNeverIncreasesTransmission) {
  const auto [n, m] = GetParam();
  const ca::Chirality ch(n, m);
  const ca::TubeHamiltonian h(ch);
  ca::NegfSolver pristine(h, 2);
  ca::NegfSolver damaged(h, 2);
  ca::CellPerturbation p;
  p.onsite_shift_ev.assign(h.atoms_per_cell(), 0.0);
  p.onsite_shift_ev[1] = 1e3;
  damaged.set_perturbation(0, p);
  for (double e : {0.2, 0.8}) {
    EXPECT_LE(damaged.transmission(e), pristine.transmission(e) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallTubes, NegfEquivalence,
                         ::testing::Values(std::pair{4, 4}, std::pair{6, 6},
                                           std::pair{9, 0},
                                           std::pair{6, 3}),
                         [](const auto& p) {
                           return "n" + std::to_string(p.param.first) +
                                  "m" + std::to_string(p.param.second);
                         });

TEST(NegfSymmetry, TransmissionElectronHoleSymmetric) {
  // Nearest-neighbour tight binding on the bipartite CNT lattice is
  // particle-hole symmetric, so pristine transmission is even in energy.
  const ca::Chirality ch(5, 5);
  const ca::TubeHamiltonian h(ch);
  ca::NegfSolver solver(h, 1);
  for (double e : {0.3, 0.9, 1.5}) {
    EXPECT_NEAR(solver.transmission(e), solver.transmission(-e), 0.03)
        << "E = " << e;
  }
}

// ---------------------------------------------------------------------------
// MWCNT compact-model scaling laws over (D, L).
// ---------------------------------------------------------------------------

class MwcntScaling
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MwcntScaling, ResistanceLawsHold) {
  const auto [d_nm, l_um] = GetParam();
  const double l = l_um * 1e-6;
  const cc::MwcntLine line2 = cc::make_paper_mwcnt(d_nm, 2, 0.0);
  const cc::MwcntLine line4 = cc::make_paper_mwcnt(d_nm, 4, 0.0);
  // Doping with 2x channels exactly halves R (ideal contacts).
  EXPECT_NEAR(line4.resistance(l), line2.resistance(l) / 2.0,
              1e-9 * line2.resistance(l));
  // Sub-additivity in length: R(2L) <= 2 R(L) (ballistic part paid once).
  EXPECT_LE(line2.resistance(2 * l), 2.0 * line2.resistance(l) + 1e-9);
  // Monotone in length.
  EXPECT_GT(line2.resistance(2 * l), line2.resistance(l));
}

TEST_P(MwcntScaling, CapacitanceBounds) {
  const auto [d_nm, l_um] = GetParam();
  (void)l_um;
  const cc::MwcntLine line = cc::make_paper_mwcnt(d_nm, 2);
  const double ce = line.spec().electrostatic_capacitance_f_per_m;
  // Eq. 5 series: strictly below C_E, above 2/3 C_E for any real design.
  EXPECT_LT(line.capacitance_per_m(), ce);
  EXPECT_GT(line.capacitance_per_m(), 0.66 * ce);
}

TEST_P(MwcntScaling, ConductivitySaturates) {
  const auto [d_nm, l_um] = GetParam();
  const cc::MwcntLine line = cc::make_paper_mwcnt(d_nm, 2, 0.0);
  const double l = l_um * 1e-6;
  // sigma(L) is increasing and below the L -> inf limit
  // sigma_inf = sum(Nc G0 lambda) / A.
  const double area = M_PI * d_nm * d_nm * 1e-18 / 4.0;
  const double sigma_inf = line.total_channels() *
                           cnti::phys::kConductanceQuantum *
                           (1000.0 * d_nm * 1e-9) / area;
  EXPECT_LT(line.effective_conductivity(l), sigma_inf);
  EXPECT_LT(line.effective_conductivity(l),
            line.effective_conductivity(2 * l));
}

INSTANTIATE_TEST_SUITE_P(
    DiameterLengthGrid, MwcntScaling,
    ::testing::Combine(::testing::Values(5.0, 10.0, 14.0, 22.0),
                       ::testing::Values(1.0, 10.0, 100.0, 1000.0)));

// ---------------------------------------------------------------------------
// Cu size effects monotone in dimensions.
// ---------------------------------------------------------------------------

class CuSizeEffects : public ::testing::TestWithParam<double> {};

TEST_P(CuSizeEffects, ResistivityAboveBulkAndMonotone) {
  const double w_nm = GetParam();
  cm::CuLineSpec spec;
  spec.width_m = w_nm * 1e-9;
  spec.height_m = 2.0 * spec.width_m;
  const double rho = cm::cu_effective_resistivity(spec);
  EXPECT_GE(rho, cnti::cuconst::kBulkResistivity);
  // Wider wire of the same family has lower resistivity.
  cm::CuLineSpec wider = spec;
  wider.width_m *= 1.5;
  wider.height_m *= 1.5;
  EXPECT_LT(cm::cu_effective_resistivity(wider), rho);
  // Temperature monotonicity.
  cm::CuLineSpec hot = spec;
  hot.temperature_k = 380.0;
  EXPECT_GT(cm::cu_effective_resistivity(hot), rho);
}

INSTANTIATE_TEST_SUITE_P(Widths, CuSizeEffects,
                         ::testing::Values(8.0, 12.0, 22.0, 45.0, 90.0,
                                           180.0));

// ---------------------------------------------------------------------------
// Maxwell capacitance matrix properties on randomized structures.
// ---------------------------------------------------------------------------

class MaxwellMatrix : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaxwellMatrix, SymmetricDominantNeutral) {
  cn::Rng rng(GetParam());
  ct::Structure s(ct::Grid3D::uniform(0.4e-6, 0.4e-6, 0.3e-6, 11, 11, 9),
                  1.0 + 3.0 * rng.uniform());
  // Two or three random non-overlapping bars.
  const int nc = 2 + (rng.bernoulli(0.5) ? 1 : 0);
  for (int c = 0; c < nc; ++c) {
    const double x0 = 0.02e-6 + 0.12e-6 * c;
    const double y0 = 0.05e-6 + 0.1e-6 * rng.uniform();
    const double z0 = 0.05e-6 + 0.1e-6 * rng.uniform();
    s.add_conductor("c" + std::to_string(c),
                    {x0, x0 + 0.06e-6, y0, y0 + 0.15e-6, z0,
                     z0 + 0.08e-6});
  }
  const auto caps = ct::extract_capacitance(s);
  double frob = 0.0;
  for (int i = 0; i < nc; ++i) {
    for (int j = 0; j < nc; ++j) {
      frob = std::max(frob, std::abs(caps.matrix(i, j)));
    }
  }
  for (int i = 0; i < nc; ++i) {
    EXPECT_GT(caps.matrix(i, i), 0.0);
    double row_sum = 0.0;
    for (int j = 0; j < nc; ++j) {
      row_sum += caps.matrix(i, j);
      if (i != j) {
        EXPECT_LE(caps.matrix(i, j), 1e-22);
        EXPECT_NEAR(caps.matrix(i, j), caps.matrix(j, i), 0.03 * frob);
      }
    }
    // Neumann outer boundary conserves charge: rows sum to ~0.
    EXPECT_NEAR(row_sum, 0.0, 0.02 * frob);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxwellMatrix,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ---------------------------------------------------------------------------
// MNA passivity on randomized RC ladders.
// ---------------------------------------------------------------------------

class MnaPassivity : public ::testing::TestWithParam<unsigned> {};

TEST_P(MnaPassivity, RcNetworkStaysWithinSourceBounds) {
  cn::Rng rng(GetParam());
  cir::Circuit ckt;
  const auto in = ckt.node("in");
  cir::PulseWave pulse;
  pulse.v2 = 1.0;
  pulse.delay_s = 20e-12;
  pulse.rise_s = 10e-12;
  pulse.fall_s = 10e-12;
  pulse.width_s = 400e-12;
  pulse.period_s = 1e-9;
  ckt.add_vsource("v1", in, 0, pulse);

  cir::NodeId prev = in;
  const int n = 4 + rng.uniform_int(0, 4);
  for (int i = 0; i < n; ++i) {
    const auto node = ckt.node("n" + std::to_string(i));
    ckt.add_resistor("r" + std::to_string(i), prev, node,
                     rng.uniform(0.5e3, 20e3));
    ckt.add_capacitor("c" + std::to_string(i), node, 0,
                      rng.uniform(0.1e-15, 5e-15));
    prev = node;
  }
  cir::TransientOptions opt;
  opt.t_stop_s = 1e-9;
  opt.dt_s = 0.5e-12;
  const auto res = cir::simulate_transient(ckt, opt);
  // Passivity: every internal node stays within [0 - eps, 1 + eps].
  for (int i = 0; i < n; ++i) {
    const auto& v = res.voltage(ckt.node("n" + std::to_string(i)));
    for (double x : v) {
      EXPECT_GE(x, -1e-3);
      EXPECT_LE(x, 1.0 + 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MnaPassivity,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---------------------------------------------------------------------------
// Black's equation scaling over the (j, T) grid.
// ---------------------------------------------------------------------------

class BlackScaling
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BlackScaling, PowerLawAndArrhenius) {
  const auto [j, t] = GetParam();
  th::BlackParams p;
  const double base = th::black_mttf_s(j, t, p);
  // j^-n law with n = 2.
  EXPECT_NEAR(th::black_mttf_s(2.0 * j, t, p), base / 4.0, 1e-6 * base);
  // Arrhenius consistency: ln ratio equals Ea/k (1/T1 - 1/T2).
  const double t2 = t + 40.0;
  const double expected =
      std::exp(p.activation_energy_ev * cnti::phys::kElectronVolt /
               cnti::phys::kBoltzmann * (1.0 / t - 1.0 / t2));
  EXPECT_NEAR(base / th::black_mttf_s(j, t2, p), expected,
              1e-6 * expected);
}

INSTANTIATE_TEST_SUITE_P(
    StressGrid, BlackScaling,
    ::testing::Combine(::testing::Values(0.5e10, 1e10, 3e10),
                       ::testing::Values(330.0, 378.0, 450.0)));

// ---------------------------------------------------------------------------
// Self-heating scaling laws.
// ---------------------------------------------------------------------------

class SelfHeatScaling
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SelfHeatScaling, QuadraticInCurrentQuadraticInLength) {
  const auto [k, i_ua] = GetParam();
  th::LineThermalSpec spec;
  spec.length_m = 1e-6;
  spec.cross_section_m2 = 4.4e-17;
  spec.thermal_conductivity = k;
  spec.resistance_per_m = 2e10;
  const double i = i_ua * 1e-6;
  const auto base = th::solve_self_heating(spec, i, 201);
  // dT ~ I^2 (no TCR).
  const auto twice_i = th::solve_self_heating(spec, 2.0 * i, 201);
  EXPECT_NEAR(twice_i.peak_rise_k, 4.0 * base.peak_rise_k,
              0.02 * twice_i.peak_rise_k);
  // dT ~ L^2.
  auto long_spec = spec;
  long_spec.length_m *= 2.0;
  const auto twice_l = th::solve_self_heating(long_spec, i, 201);
  EXPECT_NEAR(twice_l.peak_rise_k, 4.0 * base.peak_rise_k,
              0.02 * twice_l.peak_rise_k);
  // dT ~ 1/k.
  auto stiff = spec;
  stiff.thermal_conductivity *= 2.0;
  EXPECT_NEAR(th::solve_self_heating(stiff, i, 201).peak_rise_k,
              base.peak_rise_k / 2.0, 0.02 * base.peak_rise_k);
}

INSTANTIATE_TEST_SUITE_P(
    KCurrentGrid, SelfHeatScaling,
    ::testing::Combine(::testing::Values(385.0, 3000.0, 10000.0),
                       ::testing::Values(5.0, 15.0)));

// ---------------------------------------------------------------------------
// Composite bounds over the volume-fraction sweep.
// ---------------------------------------------------------------------------

class CompositeBounds : public ::testing::TestWithParam<double> {};

TEST_P(CompositeBounds, PhysicalBracketsAndMonotonicity) {
  const double vf = GetParam();
  cm::CompositeSpec spec;
  spec.cnt_volume_fraction = vf;
  spec.void_fraction = 0.0;
  const double sigma = cm::composite_conductivity(spec);
  EXPECT_GT(sigma, 0.0);
  const double jmax = cm::composite_max_current_density(spec);
  EXPECT_GE(jmax, cnti::cuconst::kEmCurrentDensityLimit - 1.0);
  EXPECT_LE(jmax, cnti::cntconst::kCntMaxCurrentDensity);
  EXPECT_GE(cm::composite_em_lifetime_factor(spec), 1.0);
  // More CNT -> more ampacity (monotone).
  cm::CompositeSpec more = spec;
  more.cnt_volume_fraction = std::min(0.95, vf + 0.1);
  EXPECT_GE(cm::composite_max_current_density(more), jmax);
}

INSTANTIATE_TEST_SUITE_P(Fractions, CompositeBounds,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.6,
                                           0.8));

// ---------------------------------------------------------------------------
// Growth model monotone in temperature; Co dominates Fe at low T.
// ---------------------------------------------------------------------------

class GrowthMonotone : public ::testing::TestWithParam<double> {};

TEST_P(GrowthMonotone, ArrheniusTrendsAndCatalystOrdering) {
  const double t_c = GetParam();
  cp::GrowthRecipe fe;
  fe.temperature_c = t_c;
  cp::GrowthRecipe co = fe;
  co.catalyst = cp::Catalyst::kCo;
  const auto qf = cp::evaluate_recipe(fe);
  const auto qc = cp::evaluate_recipe(co);
  // Co never grows slower than Fe below 500 C (lower activation onset).
  if (t_c <= 500.0) {
    EXPECT_GE(qc.growth_rate_um_per_min, qf.growth_rate_um_per_min);
  }
  // Hotter is faster and cleaner for the same catalyst.
  cp::GrowthRecipe hotter = fe;
  hotter.temperature_c = t_c + 50.0;
  const auto qh = cp::evaluate_recipe(hotter);
  EXPECT_GT(qh.growth_rate_um_per_min, qf.growth_rate_um_per_min);
  EXPECT_GT(qh.defect_spacing_um, qf.defect_spacing_um);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, GrowthMonotone,
                         ::testing::Values(350.0, 400.0, 450.0, 500.0,
                                           600.0));

// ---------------------------------------------------------------------------
// Waveform properties across pulse configurations.
// ---------------------------------------------------------------------------

class PulseProperties
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PulseProperties, BoundedAndPeriodic) {
  const auto [rise_ps, width_ps] = GetParam();
  cir::PulseWave p;
  p.v1 = -0.2;
  p.v2 = 1.1;
  p.delay_s = 30e-12;
  p.rise_s = rise_ps * 1e-12;
  p.fall_s = rise_ps * 1e-12;
  p.width_s = width_ps * 1e-12;
  p.period_s = 2.0 * (width_ps + 2.0 * rise_ps) * 1e-12;
  const cir::Waveform w = p;
  for (int i = 0; i <= 200; ++i) {
    const double t = i * p.period_s / 50.0;
    const double v = cir::waveform_value(w, t);
    EXPECT_GE(v, p.v1 - 1e-12);
    EXPECT_LE(v, p.v2 + 1e-12);
    // Periodicity after the delay.
    if (t > p.delay_s) {
      EXPECT_NEAR(v, cir::waveform_value(w, t + p.period_s), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    EdgeGrid, PulseProperties,
    ::testing::Combine(::testing::Values(1.0, 10.0, 50.0),
                       ::testing::Values(100.0, 500.0)));

// ---------------------------------------------------------------------------
// Repeater optimality over line lengths.
// ---------------------------------------------------------------------------

class RepeaterOptimality : public ::testing::TestWithParam<double> {};

TEST_P(RepeaterOptimality, OptimizedNeverWorseAndMonotoneInLength) {
  const double l_mm = GetParam();
  const auto line = cc::make_paper_mwcnt(10, 2, 50e3).rlc();
  const auto plan = cc::optimize_repeaters(line, l_mm * 1e-3);
  EXPECT_LE(plan.total_delay_s, plan.unrepeated_delay_s + 1e-18);
  // Perturbing the optimum (one more/fewer repeater at same size) never
  // improves the delay.
  cc::RepeaterLibrary lib;
  if (plan.count > 1) {
    EXPECT_GE(cc::repeated_line_delay(line, l_mm * 1e-3, plan.count - 1,
                                      plan.size, lib),
              plan.total_delay_s - 1e-18);
  }
  EXPECT_GE(cc::repeated_line_delay(line, l_mm * 1e-3, plan.count + 1,
                                    plan.size, lib),
            plan.total_delay_s - 1e-18);
}

INSTANTIATE_TEST_SUITE_P(Lengths, RepeaterOptimality,
                         ::testing::Values(0.2, 1.0, 2.0, 5.0, 10.0));

}  // namespace
