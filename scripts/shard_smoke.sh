#!/usr/bin/env bash
# End-to-end smoke of the sharded statistical-SI determinism contract:
#   1. run one 240-sample study in a single process;
#   2. rerun it split into 2 and then 8 shard processes (different thread
#      counts per shard, to also exercise thread-count invariance);
#   3. merge each decomposition — the merged study JSON and CSV must be
#      byte-identical across all three runs (cmp), and every shard of the
#      2-way split must differ from the matching range of the 8-way split
#      only in its framing, never its sample values (the merge checks the
#      partition exactly).
#
# usage: shard_smoke.sh <build-dir>
set -eu
build="${1:-build}"
shard="$build/scenario_shard"
[ -x "$shard" ] || { echo "missing $shard"; exit 2; }

work="$(mktemp -d)"
cleanup() {
  # Reap any shard still running (set -e kills the script mid-loop on a
  # failed run) so rm -rf cannot race a writer recreating files.
  wait 2> /dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

samples=240

echo "== single process =="
"$shard" run --samples "$samples" --threads 2 --out "$work/s1_0.json"
"$shard" merge --out "$work/study1.json" --csv "$work/study1.csv" \
  "$work/s1_0.json"

echo "== 2 shards =="
for i in 0 1; do
  "$shard" run --samples "$samples" --shard "$i" --shards 2 --threads 1 \
    --out "$work/s2_$i.json"
done
"$shard" merge --out "$work/study2.json" --csv "$work/study2.csv" \
  "$work"/s2_*.json

echo "== 8 shards =="
for i in 0 1 2 3 4 5 6 7; do
  "$shard" run --samples "$samples" --shard "$i" --shards 8 --threads 4 \
    --out "$work/s8_$i.json"
done
"$shard" merge --out "$work/study8.json" --csv "$work/study8.csv" \
  "$work"/s8_*.json

echo "== merged reports byte-identical at 1/2/8 shards =="
cmp "$work/study1.json" "$work/study2.json"
cmp "$work/study1.json" "$work/study8.json"
cmp "$work/study1.csv" "$work/study2.csv"
cmp "$work/study1.csv" "$work/study8.csv"

echo "shard smoke OK"
