#!/usr/bin/env bash
# Verify that every public header under src/ is self-contained: each must
# compile on its own as the first include of a translation unit.
set -u
cd "$(dirname "$0")/.."
cxx="${CXX:-c++}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
for h in $(find src -name '*.hpp' | sort); do
  rel="${h#src/}"
  printf '#include "%s"\nint main() { return 0; }\n' "$rel" > "$tmp/check.cpp"
  if ! "$cxx" -std=c++20 -Isrc -fsyntax-only "$tmp/check.cpp" 2> "$tmp/err.txt"; then
    echo "NOT SELF-CONTAINED: $h"
    sed -n 1,5p "$tmp/err.txt"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "all headers self-contained"
fi
exit "$fail"
