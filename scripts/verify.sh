#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the whole test suite.
set -eu
cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j
