#!/usr/bin/env bash
# End-to-end smoke of the scenario service's warm-restart contract:
#   1. start scenario_server with a fresh disk cache, run a cold study;
#   2. SIGTERM the daemon (graceful), restart it on the same cache dir;
#   3. rerun the identical study with --require-warm — the client exits 3
#      if the server recomputed anything (every stage must come from disk);
#   4. results must be byte-identical across the restart (cmp of the CSVs);
#   5. stop the daemon through the wire protocol and check exit codes.
#
# usage: service_smoke.sh <build-dir>
set -eu
build="${1:-build}"
server="$build/scenario_server"
client="$build/scenario_client"
[ -x "$server" ] || { echo "missing $server"; exit 2; }
[ -x "$client" ] || { echo "missing $client"; exit 2; }

work="$(mktemp -d)"
server_pid=""
cleanup() {
  # Kill AND reap the daemon before removing its working tree: a server
  # mid-store could otherwise recreate cache files under a half-deleted
  # directory (or leak an orphan holding the log open).
  if [ -n "$server_pid" ]; then
    kill "$server_pid" 2> /dev/null || true
    wait "$server_pid" 2> /dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT
# On Ctrl-C / TERM, exit through the EXIT trap with the conventional
# 128+signal status instead of dying mid-cleanup.
trap 'exit 130' INT
trap 'exit 143' TERM

start_server() {
  "$server" --port 0 --cache-dir "$work/cache" --threads 4 \
    > "$work/server.log" 2>&1 &
  server_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^SERVICE_PORT=//p' "$work/server.log" | head -1)"
    [ -n "$port" ] && return 0
    kill -0 "$server_pid" 2> /dev/null || { cat "$work/server.log"; exit 1; }
    sleep 0.1
  done
  echo "server never reported its port"; cat "$work/server.log"; exit 1
}

echo "== cold run =="
start_server
"$client" --port "$port" --demo 6 --csv "$work/cold.csv"

echo "== graceful SIGTERM restart =="
kill -TERM "$server_pid"
wait "$server_pid" || { echo "server exited non-zero on SIGTERM"; exit 1; }
server_pid=""

start_server
echo "== warm run (must hit the disk cache for every stage) =="
"$client" --port "$port" --demo 6 --csv "$work/warm.csv" --require-warm

echo "== results bit-identical across restart =="
cmp "$work/cold.csv" "$work/warm.csv"

echo "== protocol shutdown =="
"$client" --port "$port" --demo 0 --shutdown
wait "$server_pid" || { echo "server exited non-zero on shutdown"; exit 1; }
server_pid=""

echo "service smoke OK"
