#!/usr/bin/env bash
# End-to-end smoke of the observability spine:
#   1. start scenario_server under CNTI_TRACE with a fresh disk cache and
#      run a cold study — every tier (solver, rom, cache, engine, service)
#      crosses instrumented span sites;
#   2. scrape `scenario_client --metrics` and require a non-empty
#      Prometheus exposition with live service counters + latencies;
#   3. shut the daemon down through the wire protocol, which flushes the
#      trace at process exit, and validate the file with trace_check
#      (strict JSON, complete "X" events, all five tiers present);
#   4. run the scenario-engine bench WITHOUT tracing and gate on its
#      obs_overhead_pct metric: compiled-in-but-disabled instrumentation
#      must cost < 2% of a warm scenario (skipped with a notice when the
#      bench binary was not built).
#
# usage: trace_smoke.sh <build-dir> [<artifact-dir>]
#        artifact-dir, when given, receives the validated trace JSON.
set -eu
build="${1:-build}"
artifacts="${2:-}"
server="$build/scenario_server"
client="$build/scenario_client"
checker="$build/trace_check"
bench="$build/bench_scenario_engine"
[ -x "$server" ] || { echo "missing $server"; exit 2; }
[ -x "$client" ] || { echo "missing $client"; exit 2; }
[ -x "$checker" ] || { echo "missing $checker"; exit 2; }

work="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then
    kill "$server_pid" 2> /dev/null || true
    wait "$server_pid" 2> /dev/null || true
  fi
  rm -rf "$work"
}
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

echo "== traced daemon run =="
CNTI_TRACE="$work/trace_%p.json" \
  "$server" --port 0 --cache-dir "$work/cache" --threads 4 \
  > "$work/server.log" 2>&1 &
server_pid=$!
port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^SERVICE_PORT=//p' "$work/server.log" | head -1)"
  [ -n "$port" ] && break
  kill -0 "$server_pid" 2> /dev/null || { cat "$work/server.log"; exit 1; }
  sleep 0.1
done
[ -n "$port" ] || { echo "server never reported its port"; exit 1; }

"$client" --port "$port" --demo 4 --csv "$work/demo.csv"

echo "== metrics scrape =="
"$client" --port "$port" --demo 0 --metrics > "$work/metrics.txt"
[ -s "$work/metrics.txt" ] || { echo "--metrics printed nothing"; exit 1; }
grep -q '^cnti_service_requests ' "$work/metrics.txt"
grep -q '^cnti_engine_scenarios ' "$work/metrics.txt"
grep -q '^cnti_service_request_ns_count ' "$work/metrics.txt"
echo "metrics exposition OK ($(wc -l < "$work/metrics.txt") lines)"

echo "== shutdown flushes the trace =="
"$client" --port "$port" --demo 0 --shutdown
wait "$server_pid" || { echo "server exited non-zero"; exit 1; }
trace="$work/trace_$server_pid.json"
server_pid=""
[ -s "$trace" ] || { echo "no trace written at $trace"; exit 1; }

echo "== trace validation =="
"$checker" --trace "$trace" --min-events 50 \
  --require-tiers solver,rom,cache,engine,service
if [ -n "$artifacts" ]; then
  mkdir -p "$artifacts"
  cp "$trace" "$artifacts/trace_smoke.json"
fi

echo "== disabled-overhead gate (< 2%) =="
if [ -x "$bench" ]; then
  # No CNTI_TRACE here on purpose: the gate measures the *disabled* span
  # fast path, which is the cost every production run pays.
  env -u CNTI_TRACE CNTI_BENCH_JSON="$work/bench.json" \
    "$bench" --benchmark_filter='^$' > "$work/bench.log"
  grep -E "Observability" "$work/bench.log"
  pct="$(sed -n 's/.*"obs_overhead_pct": *\([0-9.eE+-]*\).*/\1/p' \
    "$work/bench.json" | head -1)"
  [ -n "$pct" ] || { echo "obs_overhead_pct missing from bench JSON"; exit 1; }
  awk -v p="$pct" 'BEGIN { exit !(p < 2.0) }' \
    || { echo "disabled observability overhead ${pct}% >= 2%"; exit 1; }
  echo "disabled overhead ${pct}% OK"
else
  echo "bench_scenario_engine not built; overhead gate skipped"
fi

echo "trace smoke OK"
