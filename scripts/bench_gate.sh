#!/usr/bin/env sh
# Bench regression gate for the supernodal LU path.
#
# Parses the flat JSON metric sink written by bench_mna_scaling (see
# common/json_sink.hpp; produced when CNTI_BENCH_JSON is set) and fails
# when the supernodal-vs-scalar refactorization speedup on the 32x640
# (20578-unknown) bus ladder rung falls below the floor.
#
# The bench measures interleaved min-of-k wall clock, which filters most
# scheduler noise but not all of it on shared CI runners, so the floor is
# deliberately below the quiet-machine speedup (~1.5x single-core, see
# docs/CIRCUIT_SOLVERS.md): the gate exists to catch the blocked kernels
# regressing toward — or below — the scalar path, not to pin the exact
# ratio.
#
# Usage: bench_gate.sh BENCH_bench_mna_scaling.json [min_speedup]
set -eu

json="${1:?usage: bench_gate.sh BENCH_bench_mna_scaling.json [min_speedup]}"
floor="${2:-1.2}"

[ -f "$json" ] || { echo "bench JSON not found: $json"; exit 1; }

speedup="$(sed -n \
  's/.*"supernodal_refactor_speedup_32x640": *\([0-9.eE+-]*\).*/\1/p' \
  "$json" | head -1)"
[ -n "$speedup" ] || {
  echo "supernodal_refactor_speedup_32x640 missing from $json"
  exit 1
}

awk -v s="$speedup" -v f="$floor" 'BEGIN { exit !(s >= f) }' || {
  echo "supernodal refactor speedup ${speedup}x < ${floor}x floor"
  exit 1
}
echo "supernodal refactor speedup ${speedup}x >= ${floor}x OK"
