// Global-interconnect study (paper Fig. 1, right): Cu-CNT composite for
// global wiring. Sweeps the CNT fraction, picks a fill process, and
// reports the resistivity/ampacity/EM trade-off for a 1 mm global line,
// including the full circuit-level delay of the chosen composite.
//
//   $ ./examples/global_composite_study
#include <iostream>

#include "charz/em_test.hpp"
#include "circuit/builders.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "materials/composite.hpp"
#include "materials/copper.hpp"
#include "process/composite_process.hpp"

int main() {
  using namespace cnti;

  std::cout << "Global interconnects: Cu-CNT composite for a 1 mm line\n\n";

  // Scaled-Cu matrix resistivity at a 45 nm global wire.
  materials::CuLineSpec cu;
  cu.width_m = 45e-9;
  cu.height_m = 90e-9;
  const double rho_matrix = materials::cu_effective_resistivity(cu);

  // --- Step 1: choose the fill process. ---------------------------------
  std::cout << "Fill process selection (30% VA-CNT carpet):\n";
  Table p({"method", "fill frac.", "void frac.", "CMOS chem."});
  process::FillRecipe eld;
  eld.method = process::FillMethod::kEld;
  eld.plating_time_min = 90.0;
  process::FillRecipe ecd = eld;
  ecd.method = process::FillMethod::kEcd;
  const auto out_eld = process::simulate_fill(eld, 0.3);
  const auto out_ecd = process::simulate_fill(ecd, 0.3);
  p.add_row({"ELD", Table::num(out_eld.fill_fraction, 3),
             Table::num(out_eld.void_fraction, 3),
             out_eld.cmos_compatible_chemistry ? "yes" : "no"});
  p.add_row({"ECD", Table::num(out_ecd.fill_fraction, 3),
             Table::num(out_ecd.void_fraction, 3),
             out_ecd.cmos_compatible_chemistry ? "yes" : "no"});
  p.print(std::cout);
  std::cout << "-> ECD selected (void-free trend + CMOS chemistry, paper "
               "Fig. 7)\n\n";

  // --- Step 2: composition sweep. ---------------------------------------
  std::cout << "Composite design space (ECD fill, matrix rho = "
            << Table::num(rho_matrix * 1e8, 3) << " uOhm cm):\n";
  Table t({"CNT frac.", "sigma/sigma_Cu", "j_max [MA/cm^2]",
           "EM life xCu", "k_th [W/mK]"});
  const double sigma_cu = 1.0 / rho_matrix;
  for (double vf : {0.0, 0.2, 0.4, 0.6}) {
    auto spec = process::to_composite_spec(out_ecd, vf, rho_matrix);
    t.add_row(
        {Table::num(vf, 3),
         Table::num(materials::composite_conductivity(spec) / sigma_cu, 3),
         Table::num(units::to_A_per_cm2(
                        materials::composite_max_current_density(spec)) /
                        1e6,
                    3),
         Table::num(materials::composite_em_lifetime_factor(spec), 3),
         Table::num(materials::composite_thermal_conductivity(spec), 4)});
  }
  t.print(std::cout);

  // --- Step 3: accelerated EM qualification. ----------------------------
  std::cout << "\nEM qualification at 2.5 MA/cm^2, 300 C:\n";
  charz::EmStressConditions cond;
  auto comp = process::to_composite_spec(out_ecd, 0.4, rho_matrix);
  const auto em_cu = charz::run_em_stress(charz::LineTechnology::kCu, cond);
  const auto em_cc = charz::run_em_stress(
      charz::LineTechnology::kCuCntComposite, cond, comp);
  std::cout << "  Cu:        median TTF " << Table::num(em_cu.ttf_hours.median, 3)
            << " h -> " << Table::num(em_cu.use_median_years, 3)
            << " years at use conditions\n";
  std::cout << "  composite: median TTF " << Table::num(em_cc.ttf_hours.median, 3)
            << " h -> " << Table::num(em_cc.use_median_years, 3)
            << " years at use conditions\n";

  // --- Step 4: circuit-level delay of the chosen line. ------------------
  const double sigma = materials::composite_conductivity(comp);
  core::LineRlc line;
  line.resistance_per_m = 1.0 / (sigma * cu.width_m * cu.height_m);
  line.capacitance_per_m = 180e-12;  // global-level environment
  circuit::Fig11Options opt;
  opt.line = line;
  opt.length_m = 1e-3;
  opt.segments = 24;
  opt.driver_size = 32.0;
  const double tp = circuit::measure_fig11_delay(opt, 1500);
  std::cout << "\n1 mm composite global line, 32x driver: t_pd = "
            << Table::num(units::to_ns(tp), 3) << " ns\n";
  return 0;
}
