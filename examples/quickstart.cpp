// Quickstart: the multi-scale flow in ~40 lines.
//
// Builds a doped-MWCNT interconnect from atomistic doping parameters down
// to circuit delay, then compares it against the pristine tube — the
// paper's core question ("does doping help, and when?") in one program.
//
//   $ ./examples/quickstart
#include <iostream>

#include "common/table.hpp"
#include "core/multiscale.hpp"

int main() {
  using namespace cnti;

  std::cout << "cnti quickstart: doped vs. pristine MWCNT interconnect\n\n";

  core::MultiscaleInput input;
  input.outer_diameter_nm = 10.0;
  input.length_um = 500.0;
  input.contact_resistance_kohm = 200.0;

  Table t({"quantity", "pristine", "iodine-doped"});
  input.dopant_concentration = 0.0;
  const auto pristine = core::run_multiscale_flow(input);
  input.dopant_concentration = 1.0;  // saturated internal iodine
  const auto doped = core::run_multiscale_flow(input);

  t.add_row({"Fermi shift [eV]", Table::num(pristine.fermi_shift_ev, 3),
             Table::num(doped.fermi_shift_ev, 3)});
  t.add_row({"channels per shell N_c",
             Table::num(pristine.channels_per_shell, 3),
             Table::num(doped.channels_per_shell, 3)});
  t.add_row({"shells N_s", std::to_string(pristine.shells),
             std::to_string(doped.shells)});
  t.add_row({"MFP [um]", Table::num(pristine.mfp_um, 3),
             Table::num(doped.mfp_um, 3)});
  t.add_row({"C_E [aF/um]",
             Table::num(pristine.electrostatic_cap_af_per_um, 3),
             Table::num(doped.electrostatic_cap_af_per_um, 3)});
  t.add_row({"R(500 um) [kOhm]", Table::num(pristine.resistance_kohm, 4),
             Table::num(doped.resistance_kohm, 4)});
  t.add_row({"C(500 um) [fF]", Table::num(pristine.capacitance_ff, 4),
             Table::num(doped.capacitance_ff, 4)});
  t.add_row({"delay [ps]", Table::num(pristine.delay_ps, 4),
             Table::num(doped.delay_ps, 4)});
  t.print(std::cout);

  std::cout << "\nDelay ratio doped/pristine: "
            << Table::num(doped.delay_ps / pristine.delay_ps, 3)
            << "  (paper Fig. 12: ~0.9 for D = 10 nm at 500 um)\n";
  return 0;
}
