// Design-space sweep on the deterministic parallel engine: walk the
// doping x length x growth-temperature grid of the variability Monte
// Carlo (paper Sec. II.A / III.C) with core::run_sweep, and export the
// map as CSV. The whole study is reproducible bit-for-bit at any thread
// count (CNTI_THREADS, see docs/PARALLELISM.md).
//
//   $ CNTI_THREADS=8 ./examples/design_space_sweep   (writes design_space.csv)
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/sweep_engine.hpp"
#include "numerics/thread_pool.hpp"
#include "process/variability.hpp"

int main() {
  using namespace cnti;

  std::cout << "CNT interconnect design-space sweep ("
            << numerics::ThreadPool::default_thread_count()
            << " default threads, CNTI_THREADS overrides)\n\n";

  const core::SweepGrid grid({{"doping", {0.0, 1.0}},
                              {"length_um", {0.5, 1.0, 2.0, 5.0}},
                              {"t_growth_c", {420.0, 500.0, 620.0}}});
  const auto results = core::run_sweep(
      grid, [](const core::SweepPoint& p) {
        process::VariabilityConfig cfg;
        cfg.samples = 2000;
        cfg.dopant_concentration = p.at("doping");
        cfg.length_um = p.at("length_um");
        cfg.recipe.temperature_c = p.at("t_growth_c");
        cfg.threads = 1;  // the sweep itself is the parallel axis
        return process::run_resistance_mc(cfg);
      });

  Table t({"doping", "L [um]", "T growth [C]", "median R [kOhm]", "CV",
           "open frac."});
  CsvWriter csv("design_space.csv",
                {"doping", "length_um", "t_growth_c", "median_kohm", "cv",
                 "open_fraction", "tail_fraction"});
  // Best (lowest-spread) corner of the grid, found deterministically.
  std::size_t best = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto p = grid.point(i);
    const auto& r = results[i];
    t.add_row({Table::num(p.at("doping"), 2),
               Table::num(p.at("length_um"), 3),
               Table::num(p.at("t_growth_c"), 4),
               Table::num(r.resistance_kohm.median, 4),
               Table::num(r.resistance_kohm.cv(), 3),
               Table::num(r.open_fraction, 3)});
    csv.add_row({p.at("doping"), p.at("length_um"), p.at("t_growth_c"),
                 r.resistance_kohm.median, r.resistance_kohm.cv(),
                 r.open_fraction, r.tail_fraction});
    if (r.resistance_kohm.cv() < results[best].resistance_kohm.cv()) {
      best = i;
    }
  }
  t.print(std::cout);

  const auto bp = grid.point(best);
  std::cout << "\nTightest corner of the grid: doping "
            << Table::num(bp.at("doping"), 2)
            << ", L = " << Table::num(bp.at("length_um"), 3)
            << " um, T growth = " << Table::num(bp.at("t_growth_c"), 4)
            << " C -> CV = "
            << Table::num(results[best].resistance_kohm.cv(), 3)
            << " (note: pristine rows exclude open devices, so short "
               "pristine lines can look tight while yielding less).\n";

  // The paper's Sec. III.C claim at matched conditions: doping versus
  // pristine at L = 1 um, 420 C growth.
  const auto cv_at = [&](double doping) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto p = grid.point(i);
      if (p.at("doping") == doping && p.at("length_um") == 1.0 &&
          p.at("t_growth_c") == 420.0) {
        return results[i].resistance_kohm.cv();
      }
    }
    return 0.0;
  };
  std::cout << "At matched L = 1 um / 420 C: pristine CV = "
            << Table::num(cv_at(0.0), 3) << " vs doped CV = "
            << Table::num(cv_at(1.0), 3)
            << " — doping tames the chirality/defect spread and removes "
               "every open (Sec. III.C).\n";
  std::cout << "Full map written to design_space.csv\n";
  return 0;
}
