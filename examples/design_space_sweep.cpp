// Design-space sweep on the deterministic parallel engine, two ways:
//
//  1) a declarative scenario-engine batch mapping deterministic KPIs
//     (delay, bus noise, ampacity/EM) over doping x length x driver —
//     the memo cache shares one line model / PRIMA reduction / thermal
//     solve per technology corner, and the batch is exported through the
//     structured CSV/JSON report writers;
//  2) the variability Monte Carlo map of paper Sec. II.A / III.C on the
//     raw sweep engine.
//
// Both are reproducible bit-for-bit at any thread count (CNTI_THREADS,
// see docs/PARALLELISM.md and docs/SCENARIO_ENGINE.md).
//
//   $ CNTI_THREADS=8 ./examples/design_space_sweep
//     (writes scenario_kpis.csv, scenario_kpis.json, design_space.csv)
#include <iostream>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/sweep_engine.hpp"
#include "numerics/thread_pool.hpp"
#include "process/variability.hpp"
#include "scenario/engine.hpp"
#include "scenario/report.hpp"

int main() {
  using namespace cnti;

  std::cout << "CNT interconnect design-space sweep ("
            << numerics::ThreadPool::default_thread_count()
            << " default threads, CNTI_THREADS overrides)\n\n";

  // --- 1) Deterministic KPI map through the scenario engine. -------------
  std::cout << "1) Scenario-engine KPI map: doping x length x driver "
               "(8-line bus, delay + noise + ampacity):\n";
  scenario::Scenario base;
  base.label = "dss";
  base.tech.contact_resistance_kohm = 20.0;
  base.workload.bus_lines = 8;
  base.workload.bus_segments = 32;
  base.workload.load_capacitance_ff = 0.2;
  base.analysis.noise = true;
  base.analysis.thermal = true;
  base.analysis.time_steps = 300;
  const core::SweepGrid kpi_grid({{"doping", {0.0, 1.0}},
                                  {"len_um", {20.0, 50.0}},
                                  {"driver_kohm", {2.0, 5.0, 10.0}}});
  const auto batch = scenario::expand_grid(
      base, kpi_grid, [](scenario::Scenario& s, const core::SweepPoint& p) {
        s.tech.dopant_concentration = p.at("doping");
        s.workload.length_um = p.at("len_um");
        s.workload.driver_resistance_kohm = p.at("driver_kohm");
      });
  const scenario::ScenarioEngine engine;
  const auto kpis = engine.run_batch(batch);

  Table k({"doping", "L [um]", "driver [kOhm]", "R [kOhm]", "delay [ps]",
           "noise [mV]", "ampacity [uA]"});
  for (std::size_t i = 0; i < kpis.size(); ++i) {
    const auto p = kpi_grid.point(i);
    const auto& r = kpis[i];
    k.add_row({Table::num(p.at("doping"), 2), Table::num(p.at("len_um"), 3),
               Table::num(p.at("driver_kohm"), 3),
               Table::num(r.line.resistance_kohm, 4),
               Table::num(r.line.delay_ps, 4),
               Table::num(r.noise->peak_noise_v * 1e3, 3),
               Table::num(r.thermal->ampacity_ua, 4)});
  }
  k.print(std::cout);
  scenario::write_report_csv("scenario_kpis.csv", kpis);
  scenario::write_report_json("scenario_kpis.json", kpis, &engine.cache());
  const auto cache_total = engine.cache().total_stats();
  std::cout << "\nKPI map written to scenario_kpis.csv / scenario_kpis.json "
            << "(cache: " << cache_total.hits << " hits / "
            << cache_total.misses << " misses — "
            << engine.cache().stats(scenario::stage::kBusRom).misses
            << " bus reductions served " << kpis.size() << " scenarios)\n\n";

  // --- 2) Variability Monte Carlo map (paper Sec. II.A / III.C). ---------
  std::cout << "2) Variability MC map: doping x length x growth "
               "temperature:\n";

  const core::SweepGrid grid({{"doping", {0.0, 1.0}},
                              {"length_um", {0.5, 1.0, 2.0, 5.0}},
                              {"t_growth_c", {420.0, 500.0, 620.0}}});
  const auto results = core::run_sweep(
      grid, [](const core::SweepPoint& p) {
        process::VariabilityConfig cfg;
        cfg.samples = 2000;
        cfg.dopant_concentration = p.at("doping");
        cfg.length_um = p.at("length_um");
        cfg.recipe.temperature_c = p.at("t_growth_c");
        cfg.threads = 1;  // the sweep itself is the parallel axis
        return process::run_resistance_mc(cfg);
      });

  Table t({"doping", "L [um]", "T growth [C]", "median R [kOhm]", "CV",
           "open frac."});
  CsvWriter csv("design_space.csv",
                {"doping", "length_um", "t_growth_c", "median_kohm", "cv",
                 "open_fraction", "tail_fraction"});
  // Best (lowest-spread) corner of the grid, found deterministically.
  std::size_t best = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto p = grid.point(i);
    const auto& r = results[i];
    t.add_row({Table::num(p.at("doping"), 2),
               Table::num(p.at("length_um"), 3),
               Table::num(p.at("t_growth_c"), 4),
               Table::num(r.resistance_kohm.median, 4),
               Table::num(r.resistance_kohm.cv(), 3),
               Table::num(r.open_fraction, 3)});
    csv.add_row({p.at("doping"), p.at("length_um"), p.at("t_growth_c"),
                 r.resistance_kohm.median, r.resistance_kohm.cv(),
                 r.open_fraction, r.tail_fraction});
    if (r.resistance_kohm.cv() < results[best].resistance_kohm.cv()) {
      best = i;
    }
  }
  t.print(std::cout);

  const auto bp = grid.point(best);
  std::cout << "\nTightest corner of the grid: doping "
            << Table::num(bp.at("doping"), 2)
            << ", L = " << Table::num(bp.at("length_um"), 3)
            << " um, T growth = " << Table::num(bp.at("t_growth_c"), 4)
            << " C -> CV = "
            << Table::num(results[best].resistance_kohm.cv(), 3)
            << " (note: pristine rows exclude open devices, so short "
               "pristine lines can look tight while yielding less).\n";

  // The paper's Sec. III.C claim at matched conditions: doping versus
  // pristine at L = 1 um, 420 C growth.
  const auto cv_at = [&](double doping) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto p = grid.point(i);
      if (p.at("doping") == doping && p.at("length_um") == 1.0 &&
          p.at("t_growth_c") == 420.0) {
        return results[i].resistance_kohm.cv();
      }
    }
    return 0.0;
  };
  std::cout << "At matched L = 1 um / 420 C: pristine CV = "
            << Table::num(cv_at(0.0), 3) << " vs doped CV = "
            << Table::num(cv_at(1.0), 3)
            << " — doping tames the chirality/defect spread and removes "
               "every open (Sec. III.C).\n";
  std::cout << "Full map written to design_space.csv\n";
  return 0;
}
