// Local-interconnect study (paper Fig. 1, left): replace Cu local wires
// and vias with single doped CNTs. Compares resistance, delay, ampacity
// and manufacturing variability at scaled dimensions, using the growth
// model to feed realistic device statistics.
//
//   $ ./examples/local_interconnect_study
#include <iostream>

#include "circuit/builders.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/kpis.hpp"
#include "core/mwcnt_line.hpp"
#include "core/via_model.hpp"
#include "materials/copper.hpp"
#include "process/variability.hpp"

int main() {
  using namespace cnti;
  using units::from_nm;
  using units::from_um;

  std::cout << "Local interconnects: doped single CNTs vs. scaled Cu\n\n";

  // --- Wires at three local-level widths. -------------------------------
  std::cout << "1 um local wire, CNT diameter = Cu width:\n";
  Table t({"node width [nm]", "R Cu [kOhm]", "R CNT pristine [kOhm]",
           "R CNT doped [kOhm]", "I_max Cu [uA]", "I_max CNT [uA]"});
  for (double w_nm : {7.0, 10.0, 14.0}) {
    materials::CuLineSpec cu;
    cu.width_m = from_nm(w_nm);
    cu.height_m = 2.0 * cu.width_m;
    cu.barrier_thickness_m = 1.5e-9;
    const materials::CuLine cu_line(cu);

    const auto cnt_r = [&](double nc) {
      core::MwcntSpec spec;
      spec.outer_diameter_m = from_nm(w_nm);
      spec.channels_per_shell = nc;
      spec.contact_resistance_ohm = 20e3;  // optimized end contacts
      const core::MwcntLine line(spec);
      return units::to_kOhm(line.resistance(from_um(1)));
    };
    core::MwcntSpec amp_spec;
    amp_spec.outer_diameter_m = from_nm(w_nm);
    const core::MwcntLine amp_line(amp_spec);

    t.add_row({Table::num(w_nm, 3),
               Table::num(units::to_kOhm(cu_line.resistance(from_um(1))), 3),
               Table::num(cnt_r(2), 3), Table::num(cnt_r(10), 3),
               Table::num(units::to_uA(cu_line.max_current()), 3),
               Table::num(units::to_uA(12.5e-6 *
                                       amp_line.total_channels()),
                          3)});
  }
  t.print(std::cout);

  // --- The paper's 30 nm single-CNT via. --------------------------------
  std::cout << "\n30 nm via, 100 nm tall (paper Fig. 2a/b):\n";
  core::ViaSpec via;
  core::MwcntSpec tube;
  tube.outer_diameter_m = from_nm(7.5);
  tube.contact_resistance_ohm = 20e3;
  const core::SingleCntVia cnt_via(via, tube);
  const core::CuVia cu_via(via);
  Table v({"via", "R [Ohm]", "I_max [uA]"});
  v.add_row({"single 7.5 nm MWCNT", Table::num(cnt_via.resistance(), 4),
             Table::num(units::to_uA(cnt_via.max_current()), 3)});
  v.add_row({"Cu + 2 nm barrier", Table::num(cu_via.resistance(), 4),
             Table::num(units::to_uA(cu_via.max_current()), 3)});
  v.print(std::cout);

  // --- Variability: why doping matters for manufacturing. ---------------
  std::cout << "\nDevice-to-device spread (CVD growth at 400 C on Co, "
               "1 um wires):\n";
  Table m({"population", "median R [kOhm]", "CV", "opens"});
  for (double conc : {0.0, 1.0}) {
    process::VariabilityConfig cfg;
    cfg.samples = 4000;
    cfg.recipe.catalyst = process::Catalyst::kCo;
    cfg.recipe.temperature_c = 400.0;
    cfg.dopant_concentration = conc;
    cfg.contact_median_kohm = 20.0;
    const auto r = process::run_resistance_mc(cfg);
    m.add_row({conc == 0 ? "pristine" : "doped",
               Table::num(r.resistance_kohm.median, 4),
               Table::num(r.resistance_kohm.cv(), 3),
               Table::num(100.0 * r.open_fraction, 3) + " %"});
  }
  m.print(std::cout);
  std::cout << "\nDoping closes the chirality lottery: no open devices and "
               "a far tighter spread.\n";
  return 0;
}
