// Signal-integrity study of doped CNT interconnects using the extension
// toolkit: AC bandwidth (where the kinetic inductance lives), coupled-line
// crosstalk, repeater planning for a multi-millimetre link, a 16-line
// coupled bus (2000+ MNA unknowns) that only the sparse engine makes
// tractable, and a declarative scenario-engine batch whose memo cache
// shares one PRIMA reduction per bus topology.
//
//   $ ./examples/signal_integrity_study
#include <cmath>
#include <iostream>

#include "circuit/ac.hpp"
#include "circuit/builders.hpp"
#include "circuit/crosstalk.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/mwcnt_line.hpp"
#include "core/repeater.hpp"
#include "core/sweep_engine.hpp"
#include "scenario/engine.hpp"

int main() {
  using namespace cnti;

  std::cout << "Signal integrity of a 10 nm MWCNT interconnect\n\n";

  // --- Bandwidth vs. doping (AC analysis). -------------------------------
  std::cout << "1) 3 dB bandwidth of a source-driven 200 um line:\n";
  Table bw({"N_c per shell", "R line [kOhm]", "f_3dB [GHz]"});
  for (double nc : {2.0, 4.0, 10.0}) {
    const core::MwcntLine line = core::make_paper_mwcnt(10, nc, 100e3);
    circuit::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add_vsource("vin", in, 0, circuit::DcWave{0.0});
    circuit::add_distributed_line(ckt, "ln", in, out, line.rlc(), 200e-6,
                                  12);
    ckt.add_capacitor("cl", out, 0, 1e-15);
    const auto freqs = circuit::log_frequency_grid(1e6, 1e12, 20);
    const auto res = circuit::ac_analysis(ckt, "vin", out, freqs);
    bw.add_row({Table::num(nc, 3),
                Table::num(units::to_kOhm(line.resistance(200e-6)), 4),
                Table::num(circuit::bandwidth_3db(res) / 1e9, 3)});
  }
  bw.print(std::cout);

  // --- Crosstalk noise budget. -------------------------------------------
  std::cout << "\n2) Victim noise vs. spacing-equivalent coupling "
               "(50 um neighbours):\n";
  Table xt({"coupling [aF/um]", "noise pristine [mV]", "noise doped [mV]"});
  for (double cc_af : {10.0, 30.0, 60.0}) {
    const auto noise = [&](double nc) {
      circuit::CrosstalkConfig cfg;
      cfg.victim = core::make_paper_mwcnt(10, nc, 20e3).rlc();
      cfg.aggressor = cfg.victim;
      cfg.coupling_cap_per_m = cc_af * 1e-12;
      cfg.length_m = 50e-6;
      cfg.segments = 12;
      return circuit::analyze_crosstalk(cfg, 1200).peak_noise_v * 1e3;
    };
    xt.add_row({Table::num(cc_af, 3), Table::num(noise(2), 4),
                Table::num(noise(10), 4)});
  }
  xt.print(std::cout);

  // --- Repeater plan for a 5 mm link. -------------------------------------
  std::cout << "\n3) Repeater plan, 5 mm link (contacts re-paid per "
               "repeater):\n";
  Table rp({"line", "k_opt", "size", "delay [ns]", "energy [fJ]"});
  for (double nc : {2.0, 10.0}) {
    const auto plan = core::optimize_repeaters(
        core::make_paper_mwcnt(10, nc, 50e3).rlc(), 5e-3);
    rp.add_row({nc == 2 ? "pristine" : "doped Nc=10",
                std::to_string(plan.count), Table::num(plan.size, 3),
                Table::num(units::to_ns(plan.total_delay_s), 4),
                Table::num(plan.energy_per_transition_j * 1e15, 3)});
  }
  rp.print(std::cout);

  // --- Wide coupled bus (sparse MNA engine). -----------------------------
  // 16 parallel 100 um lines, nearest-neighbour coupled, 128 segments each:
  // ~2100 MNA unknowns. The dense O(n^3) path needs minutes per handful of
  // timesteps here; the sparse backend's pattern-frozen refactorization
  // runs the full transient in about a second.
  std::cout << "\n4) 16-line coupled bus, centre aggressor (sparse MNA):\n";
  Table bus({"bus", "unknowns", "worst victim", "noise pristine [mV]",
             "noise doped [mV]"});
  {
    const auto bus_noise = [&](double nc, int* unknowns, int* victim) {
      circuit::BusConfig cfg;
      cfg.line = core::make_paper_mwcnt(10, nc, 20e3).rlc();
      cfg.coupling_cap_per_m = 30e-12;
      cfg.length_m = 100e-6;
      cfg.lines = 16;
      cfg.segments = 128;  // kAuto routes this to the sparse backend
      const auto r = circuit::analyze_bus_crosstalk(cfg, 600);
      *unknowns = r.unknowns;
      *victim = r.worst_victim;
      return r.peak_noise_v * 1e3;
    };
    int unknowns = 0, victim = 0;
    const double pristine = bus_noise(2, &unknowns, &victim);
    const double doped = bus_noise(10, &unknowns, &victim);
    bus.add_row({"16 x 128 seg", std::to_string(unknowns),
                 "line " + std::to_string(victim), Table::num(pristine, 4),
                 Table::num(doped, 4)});
  }
  bus.print(std::cout);

  // --- Scenario-engine design-space batch (PRIMA behind the cache). ------
  // Driver strength x receiver load x length over the 16-line doped bus,
  // now expressed as a declarative scenario batch instead of a hand-wired
  // ROM loop: the engine routes each scenario through the full
  // atomistic -> C_E -> compact -> ROM-noise stage graph, and its memo
  // cache reduces each length's topology exactly once — the drive
  // scenarios fold into the cached reduction. At full order this grid
  // would be dozens of 1000+-unknown transients.
  std::cout << "\n5) Scenario engine: driver x load x length batch "
               "(16-line doped bus, cached per-length reductions):\n";
  scenario::Scenario base;
  base.label = "si";
  base.tech.dopant_concentration = 1.0;  // saturated iodine doping
  base.tech.contact_resistance_kohm = 20.0;
  base.workload.bus_lines = 16;
  base.workload.bus_segments = 64;
  base.workload.coupling_cap_af_per_um = 30.0;
  base.analysis.noise = true;
  base.analysis.time_steps = 600;
  const std::vector<double> drivers = {2.0, 5.0, 10.0};
  const std::vector<double> loads = {0.1, 0.2, 0.5};
  const core::SweepGrid sweep_grid({{"len_um", {50.0, 100.0}},
                                    {"driver_kohm", drivers},
                                    {"load_ff", loads}});
  const auto batch = scenario::expand_grid(
      base, sweep_grid, [](scenario::Scenario& s, const core::SweepPoint& p) {
        s.workload.length_um = p.at("len_um");
        s.workload.driver_resistance_kohm = p.at("driver_kohm");
        s.workload.load_capacitance_ff = p.at("load_ff");
      });
  const scenario::ScenarioEngine engine;
  const auto results = engine.run_batch(batch);

  Table rom_t({"len [um]", "driver [kOhm]", "noise min..max [mV]",
               "delay min..max [ps]"});
  for (std::size_t i = 0; i < results.size(); i += loads.size()) {
    double n_min = 1e9, n_max = -1e9, d_min = 1e9, d_max = -1e9;
    for (std::size_t l = 0; l < loads.size(); ++l) {
      const auto& r = *results[i + l].noise;
      n_min = std::min(n_min, std::abs(r.peak_noise_v));
      n_max = std::max(n_max, std::abs(r.peak_noise_v));
      d_min = std::min(d_min, r.aggressor_delay_s);
      d_max = std::max(d_max, r.aggressor_delay_s);
    }
    const auto p = sweep_grid.point(i);
    rom_t.add_row({Table::num(p.at("len_um"), 3),
                   Table::num(p.at("driver_kohm"), 3),
                   Table::num(n_min * 1e3, 3) + ".." +
                       Table::num(n_max * 1e3, 3),
                   Table::num(units::to_ps(d_min), 3) + ".." +
                       Table::num(units::to_ps(d_max), 3)});
  }
  rom_t.print(std::cout);
  const auto rom_stats = engine.cache().stats(scenario::stage::kBusRom);
  std::cout << "\n   cache: " << rom_stats.misses << " reductions for "
            << results.size() << " scenarios (" << rom_stats.hits
            << " hits) — every drive scenario reused its length's ROM\n";

  // Corner cross-check: the same corner scenario through the full
  // sparse-MNA noise stage must confirm the cached ROM numbers.
  {
    scenario::Scenario corner = batch.front();  // 50 um, 2 kOhm, 0.1 fF
    const auto red = *results.front().noise;
    corner.analysis.noise_model = scenario::NoiseModel::kFullMna;
    const auto ref = *engine.run(corner).noise;
    std::cout << "\n   corner check (50 um, 2 kOhm, 0.1 fF): noise "
              << Table::num(red.peak_noise_v * 1e3, 4) << " mV (ROM) vs "
              << Table::num(ref.peak_noise_v * 1e3, 4)
              << " mV (full MNA, " << ref.unknowns << " unknowns), delay "
              << Table::num(units::to_ps(red.aggressor_delay_s), 4)
              << " ps vs "
              << Table::num(units::to_ps(ref.aggressor_delay_s), 4)
              << " ps\n";
  }

  std::cout << "\nDoping buys bandwidth, noise margin and repeater count "
               "simultaneously — the circuit-level case for the paper's "
               "doping program — the sparse MNA engine extends the "
               "analysis from line pairs to full buses, and the scenario "
               "engine's cached PRIMA reductions turn bus-level "
               "design-space sweeps into declarative batches.\n";
  return 0;
}
