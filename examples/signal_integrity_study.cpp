// Signal-integrity study of doped CNT interconnects using the extension
// toolkit: AC bandwidth (where the kinetic inductance lives), coupled-line
// crosstalk, repeater planning for a multi-millimetre link, and a 16-line
// coupled bus (2000+ MNA unknowns) that only the sparse engine makes
// tractable.
//
//   $ ./examples/signal_integrity_study
#include <cmath>
#include <iostream>
#include <optional>

#include "circuit/ac.hpp"
#include "circuit/builders.hpp"
#include "circuit/crosstalk.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/mwcnt_line.hpp"
#include "core/repeater.hpp"
#include "core/sweep_engine.hpp"
#include "rom/interconnect_rom.hpp"

int main() {
  using namespace cnti;

  std::cout << "Signal integrity of a 10 nm MWCNT interconnect\n\n";

  // --- Bandwidth vs. doping (AC analysis). -------------------------------
  std::cout << "1) 3 dB bandwidth of a source-driven 200 um line:\n";
  Table bw({"N_c per shell", "R line [kOhm]", "f_3dB [GHz]"});
  for (double nc : {2.0, 4.0, 10.0}) {
    const core::MwcntLine line = core::make_paper_mwcnt(10, nc, 100e3);
    circuit::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add_vsource("vin", in, 0, circuit::DcWave{0.0});
    circuit::add_distributed_line(ckt, "ln", in, out, line.rlc(), 200e-6,
                                  12);
    ckt.add_capacitor("cl", out, 0, 1e-15);
    const auto freqs = circuit::log_frequency_grid(1e6, 1e12, 20);
    const auto res = circuit::ac_analysis(ckt, "vin", out, freqs);
    bw.add_row({Table::num(nc, 3),
                Table::num(units::to_kOhm(line.resistance(200e-6)), 4),
                Table::num(circuit::bandwidth_3db(res) / 1e9, 3)});
  }
  bw.print(std::cout);

  // --- Crosstalk noise budget. -------------------------------------------
  std::cout << "\n2) Victim noise vs. spacing-equivalent coupling "
               "(50 um neighbours):\n";
  Table xt({"coupling [aF/um]", "noise pristine [mV]", "noise doped [mV]"});
  for (double cc_af : {10.0, 30.0, 60.0}) {
    const auto noise = [&](double nc) {
      circuit::CrosstalkConfig cfg;
      cfg.victim = core::make_paper_mwcnt(10, nc, 20e3).rlc();
      cfg.aggressor = cfg.victim;
      cfg.coupling_cap_per_m = cc_af * 1e-12;
      cfg.length_m = 50e-6;
      cfg.segments = 12;
      return circuit::analyze_crosstalk(cfg, 1200).peak_noise_v * 1e3;
    };
    xt.add_row({Table::num(cc_af, 3), Table::num(noise(2), 4),
                Table::num(noise(10), 4)});
  }
  xt.print(std::cout);

  // --- Repeater plan for a 5 mm link. -------------------------------------
  std::cout << "\n3) Repeater plan, 5 mm link (contacts re-paid per "
               "repeater):\n";
  Table rp({"line", "k_opt", "size", "delay [ns]", "energy [fJ]"});
  for (double nc : {2.0, 10.0}) {
    const auto plan = core::optimize_repeaters(
        core::make_paper_mwcnt(10, nc, 50e3).rlc(), 5e-3);
    rp.add_row({nc == 2 ? "pristine" : "doped Nc=10",
                std::to_string(plan.count), Table::num(plan.size, 3),
                Table::num(units::to_ns(plan.total_delay_s), 4),
                Table::num(plan.energy_per_transition_j * 1e15, 3)});
  }
  rp.print(std::cout);

  // --- Wide coupled bus (sparse MNA engine). -----------------------------
  // 16 parallel 100 um lines, nearest-neighbour coupled, 128 segments each:
  // ~2100 MNA unknowns. The dense O(n^3) path needs minutes per handful of
  // timesteps here; the sparse backend's pattern-frozen refactorization
  // runs the full transient in about a second.
  std::cout << "\n4) 16-line coupled bus, centre aggressor (sparse MNA):\n";
  Table bus({"bus", "unknowns", "worst victim", "noise pristine [mV]",
             "noise doped [mV]"});
  {
    const auto bus_noise = [&](double nc, int* unknowns, int* victim) {
      circuit::BusConfig cfg;
      cfg.line = core::make_paper_mwcnt(10, nc, 20e3).rlc();
      cfg.coupling_cap_per_m = 30e-12;
      cfg.length_m = 100e-6;
      cfg.lines = 16;
      cfg.segments = 128;  // kAuto routes this to the sparse backend
      const auto r = circuit::analyze_bus_crosstalk(cfg, 600);
      *unknowns = r.unknowns;
      *victim = r.worst_victim;
      return r.peak_noise_v * 1e3;
    };
    int unknowns = 0, victim = 0;
    const double pristine = bus_noise(2, &unknowns, &victim);
    const double doped = bus_noise(10, &unknowns, &victim);
    bus.add_row({"16 x 128 seg", std::to_string(unknowns),
                 "line " + std::to_string(victim), Table::num(pristine, 4),
                 Table::num(doped, 4)});
  }
  bus.print(std::cout);

  // --- ROM-driven design-space sweep (PRIMA). ----------------------------
  // Driver strength x receiver load x length over the 16-line bus: each
  // length is one topology, reduced once to a ~100-state PRIMA model; the
  // driver/load scenarios then run on the reduced system in parallel
  // through the sweep engine. At full order this grid would be dozens of
  // 1000+-unknown transients — impractical interactively; the ROM sweeps
  // it in seconds, and the last row cross-checks one corner against the
  // full sparse-MNA transient.
  std::cout << "\n5) ROM scenario sweep: driver x load x length "
               "(16-line doped bus, reduce once per length):\n";
  Table rom_t({"len [um]", "order", "driver [kOhm]", "noise min..max [mV]",
               "delay min..max [ps]"});
  const std::vector<double> drivers = {2e3, 5e3, 10e3};
  const std::vector<double> loads = {0.1e-15, 0.2e-15, 0.5e-15};
  circuit::BusConfig rom_cfg;
  rom_cfg.line = core::make_paper_mwcnt(10, 10, 20e3).rlc();
  rom_cfg.coupling_cap_per_m = 30e-12;
  rom_cfg.lines = 16;
  rom_cfg.segments = 64;
  std::optional<rom::BusRom> last_rom;  // kept for the corner cross-check
  for (const double len : {50e-6, 100e-6}) {
    rom_cfg.length_m = len;
    last_rom.emplace(rom_cfg);  // one reduction per topology
    const rom::BusRom& bus_rom = *last_rom;
    const core::SweepGrid sweep_grid(
        {{"driver_ohm", drivers}, {"load_f", loads}});
    const auto results = core::run_sweep(
        sweep_grid, [&bus_rom](const core::SweepPoint& p) {
          rom::BusScenario sc;
          sc.driver_ohm = p.at("driver_ohm");
          sc.receiver_load_f = p.at("load_f");
          return bus_rom.evaluate(sc, 600);
        });
    for (std::size_t d = 0; d < drivers.size(); ++d) {
      double n_min = 1e9, n_max = -1e9, d_min = 1e9, d_max = -1e9;
      for (std::size_t l = 0; l < loads.size(); ++l) {
        const auto& r = results[d * loads.size() + l];
        n_min = std::min(n_min, std::abs(r.peak_noise_v));
        n_max = std::max(n_max, std::abs(r.peak_noise_v));
        d_min = std::min(d_min, r.aggressor_delay_s);
        d_max = std::max(d_max, r.aggressor_delay_s);
      }
      rom_t.add_row({Table::num(len * 1e6, 3),
                     std::to_string(bus_rom.order()),
                     Table::num(drivers[d] / 1e3, 3),
                     Table::num(n_min * 1e3, 3) + ".." +
                         Table::num(n_max * 1e3, 3),
                     Table::num(units::to_ps(d_min), 3) + ".." +
                         Table::num(units::to_ps(d_max), 3)});
    }
  }
  rom_t.print(std::cout);

  // Corner cross-check: ROM vs full sparse MNA on the last topology,
  // using the very reduced model the sweep above evaluated.
  {
    rom::BusScenario sc;
    sc.driver_ohm = drivers.front();
    sc.receiver_load_f = loads.back();
    const auto red = last_rom->evaluate(sc, 600);
    rom_cfg.driver_ohm = sc.driver_ohm;
    rom_cfg.receiver_load_f = sc.receiver_load_f;
    const auto ref = circuit::analyze_bus_crosstalk(rom_cfg, 600);
    std::cout << "\n   corner check (2 kOhm, 0.5 fF): noise "
              << Table::num(red.peak_noise_v * 1e3, 4) << " mV (ROM) vs "
              << Table::num(ref.peak_noise_v * 1e3, 4)
              << " mV (full MNA, " << ref.unknowns << " unknowns), delay "
              << Table::num(units::to_ps(red.aggressor_delay_s), 4)
              << " ps vs "
              << Table::num(units::to_ps(ref.aggressor_delay_s), 4)
              << " ps\n";
  }

  std::cout << "\nDoping buys bandwidth, noise margin and repeater count "
               "simultaneously — the circuit-level case for the paper's "
               "doping program — the sparse MNA engine extends the "
               "analysis from line pairs to full buses, and the PRIMA ROM "
               "layer turns bus-level design-space sweeps into an "
               "interactive tool.\n";
  return 0;
}
