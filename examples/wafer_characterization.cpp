// Wafer-level characterization (paper Sec. II.B + IV.A): grow CNTs on a
// virtual 300 mm wafer with the Co catalyst, run the Fig. 13 test layout
// on every die, and export the wafer map as CSV for plotting.
//
//   $ ./examples/wafer_characterization   (writes wafer_map.csv)
#include <iostream>

#include "charz/testchip.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "numerics/rng.hpp"
#include "process/wafer.hpp"

int main() {
  using namespace cnti;

  std::cout << "300 mm wafer characterization (Co catalyst, 400 C)\n\n";

  numerics::Rng rng(2018);
  process::WaferSpec wspec;
  process::GrowthRecipe nominal;
  nominal.catalyst = process::Catalyst::kCo;
  nominal.temperature_c = 400.0;
  const process::WaferMap wafer(wspec, nominal, rng);

  std::cout << "Dies: " << wafer.dies().size()
            << ", diameter uniformity (max-min)/mean = "
            << Table::num(100.0 * wafer.diameter_uniformity(), 3)
            << " %, usable-die yield = "
            << Table::num(100.0 * wafer.yield(), 4) << " %\n\n";

  // Export the per-die map.
  {
    CsvWriter csv("wafer_map.csv",
                  {"x_mm", "y_mm", "radius_mm", "temperature_c",
                   "diameter_nm", "growth_rate_um_min",
                   "defect_spacing_um"});
    for (const auto& d : wafer.dies()) {
      csv.add_row({d.x_mm, d.y_mm, d.radius_mm, d.recipe.temperature_c,
                   d.quality.mean_diameter_nm,
                   d.quality.growth_rate_um_per_min,
                   d.quality.defect_spacing_um});
    }
  }
  std::cout << "Per-die growth map written to wafer_map.csv\n\n";

  // Electrical test of the Fig. 13 layout across the wafer.
  const auto layout = charz::standard_test_layout();
  charz::TesterSpec tester;
  const auto result = charz::characterize_wafer(wafer, layout, tester);

  std::cout << "Parametric test summary (" << layout.size()
            << " structures x " << wafer.dies().size() << " dies):\n";
  Table t({"structure", "mean", "CV", "unit"});
  for (std::size_t i = 0; i < result.structure_names.size(); ++i) {
    const bool is_comb =
        result.structure_names[i].rfind("comb", 0) == 0;
    t.add_row({result.structure_names[i],
               Table::num(result.value_summary[i].mean, 4),
               Table::num(result.value_summary[i].cv(), 3),
               is_comb ? "pA" : "Ohm"});
  }
  t.print(std::cout);
  std::cout << "\nDie yield (all structures in spec): "
            << Table::num(100.0 * result.die_yield, 4) << " %\n";
  return 0;
}
