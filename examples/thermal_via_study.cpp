// Thermal study (paper Sec. IV.B): self-heating of a CNT via/line vs. Cu,
// SThM temperature mapping, thermal-conductivity extraction, and TLM
// separation of contact vs. intrinsic resistance — the full virtual
// characterization chain. The self-heating / ampacity / EM sweep runs as
// a declarative scenario batch: the engine derives the line's electrical
// resistance from the compact model and routes it through the cached
// thermal stage, one solve per thermal-conductivity corner.
//
//   $ ./examples/thermal_via_study
#include <cmath>
#include <iostream>

#include "charz/tlm.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/sweep_engine.hpp"
#include "numerics/rng.hpp"
#include "scenario/engine.hpp"
#include "thermal/heat1d.hpp"
#include "thermal/sthm.hpp"

int main() {
  using namespace cnti;

  std::cout << "Thermal & electrical characterization of a MWCNT "
               "interconnect\n\n";

  // --- TLM first: split contacts from the intrinsic tube. ----------------
  charz::TlmGroundTruth truth;
  truth.contact_resistance_kohm = 15.0;
  truth.resistance_per_um_kohm = 8.0;
  numerics::Rng rng(77);
  const auto data = charz::generate_tlm_data(
      truth, {0.5, 1.0, 1.5, 2.0, 3.0, 4.0}, rng);
  const auto tlm = charz::extract_tlm(data);
  std::cout << "TLM extraction: R_c = "
            << Table::num(tlm.contact_resistance_kohm, 3) << " +- "
            << Table::num(tlm.contact_stderr_kohm, 2) << " kOhm, r = "
            << Table::num(tlm.resistance_per_um_kohm, 3) << " +- "
            << Table::num(tlm.slope_stderr_kohm, 2)
            << " kOhm/um (R^2 = " << Table::num(tlm.r_squared, 4) << ")\n\n";

  // --- Self-heating via the scenario engine's thermal stage. -------------
  // A 7.5 nm MWCNT via/line at the TLM-extracted contact resistance; the
  // engine's compact model supplies the electrical resistance and its
  // cached thermal stage solves one electro-thermal problem per k corner
  // (the paper's 3000-10000 W/mK range, plus Cu at 385 for reference).
  scenario::Scenario base;
  base.label = "via";
  base.tech.outer_diameter_nm = 7.5;
  base.tech.contact_resistance_kohm = tlm.contact_resistance_kohm;
  base.workload.length_um = 2.0;
  base.workload.operating_current_ua = 20.0;
  base.workload.substrate_coupling_w_mk = 0.05;
  base.workload.max_temperature_rise_k = 100.0;
  base.analysis.thermal = true;
  const auto batch = scenario::expand_grid(
      base, core::SweepGrid({{"k_th", {3000.0, 6500.0, 10000.0, 385.0}}}),
      [](scenario::Scenario& s, const core::SweepPoint& p) {
        s.workload.thermal_conductivity_w_mk = p.at("k_th");
      });
  const scenario::ScenarioEngine engine;
  const auto results = engine.run_batch(batch);

  std::cout << "Self-heating of the 2 um line (k swept over the paper's "
               "3000-10000 W/mK; compact-model R = "
            << Table::num(results[0].line.resistance_kohm, 4)
            << " kOhm):\n";
  Table t({"k_th [W/mK]", "dT at 20 uA [K]", "ampacity @ dT=100 K [uA]",
           "EM verdict"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double k = batch[i].workload.thermal_conductivity_w_mk;
    const auto& th = *results[i].thermal;
    t.add_row({Table::num(k, 5) + (k == 385.0 ? " (Cu ref)" : ""),
               Table::num(th.peak_rise_k, 3),
               Table::num(th.ampacity_ua, 4),
               th.cnt_em_immune
                   ? "CNT immune at " +
                         Table::num(th.current_density_a_cm2 / 1e6, 3) +
                         " MA/cm^2"
                   : "EM-limited"});
  }
  t.print(std::cout);

  // --- SThM scan and k re-extraction (direct thermal metrology API). -----
  thermal::LineThermalSpec line;
  line.length_m = 2e-6;
  line.cross_section_m2 = M_PI * 7.5e-9 * 7.5e-9 / 4.0;
  line.resistance_per_m = tlm.resistance_per_um_kohm * 1e3 / 1e-6;
  line.thermal_conductivity = 5000.0;  // "unknown" ground truth
  line.substrate_coupling = 0.0;       // suspended line for metrology
  const auto sol = thermal::solve_self_heating(line, 20e-6, 401);
  thermal::SthmProbe probe;
  probe.spatial_resolution_m = 15e-9;
  probe.temperature_noise_k = 0.03;
  const auto scan = thermal::simulate_sthm_scan(sol, probe, rng);
  const double k_est =
      thermal::extract_thermal_conductivity(scan, line, 20e-6);
  std::cout << "\nSThM metrology: peak dT = "
            << Table::num(sol.peak_rise_k, 3) << " K, " << scan.x_m.size()
            << " scan pixels -> extracted k_th = " << Table::num(k_est, 4)
            << " W/mK (truth 5000)\n";
  return 0;
}
