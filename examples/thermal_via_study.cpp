// Thermal study (paper Sec. IV.B): self-heating of a CNT via/line vs. Cu,
// SThM temperature mapping, thermal-conductivity extraction, and TLM
// separation of contact vs. intrinsic resistance — the full virtual
// characterization chain.
//
//   $ ./examples/thermal_via_study
#include <cmath>
#include <iostream>

#include "charz/tlm.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "numerics/rng.hpp"
#include "thermal/heat1d.hpp"
#include "thermal/sthm.hpp"

int main() {
  using namespace cnti;

  std::cout << "Thermal & electrical characterization of a MWCNT "
               "interconnect\n\n";

  // --- TLM first: split contacts from the intrinsic tube. ----------------
  charz::TlmGroundTruth truth;
  truth.contact_resistance_kohm = 15.0;
  truth.resistance_per_um_kohm = 8.0;
  numerics::Rng rng(77);
  const auto data = charz::generate_tlm_data(
      truth, {0.5, 1.0, 1.5, 2.0, 3.0, 4.0}, rng);
  const auto tlm = charz::extract_tlm(data);
  std::cout << "TLM extraction: R_c = "
            << Table::num(tlm.contact_resistance_kohm, 3) << " +- "
            << Table::num(tlm.contact_stderr_kohm, 2) << " kOhm, r = "
            << Table::num(tlm.resistance_per_um_kohm, 3) << " +- "
            << Table::num(tlm.slope_stderr_kohm, 2)
            << " kOhm/um (R^2 = " << Table::num(tlm.r_squared, 4) << ")\n\n";

  // --- Self-heating with the extracted resistance. -----------------------
  thermal::LineThermalSpec line;
  line.length_m = 2e-6;
  line.cross_section_m2 = M_PI * 7.5e-9 * 7.5e-9 / 4.0;
  line.resistance_per_m = tlm.resistance_per_um_kohm * 1e3 / 1e-6;
  line.substrate_coupling = 0.05;

  std::cout << "Self-heating of the 2 um line (k swept over the paper's "
               "3000-10000 W/mK):\n";
  Table t({"k_th [W/mK]", "dT at 20 uA [K]", "ampacity @ dT=100 K [uA]"});
  for (double k : {3000.0, 6500.0, 10000.0, 385.0}) {
    line.thermal_conductivity = k;
    const auto sol = thermal::solve_self_heating(line, 20e-6);
    const double amp = thermal::thermal_ampacity(line, 400.0);
    t.add_row({Table::num(k, 5) + (k == 385.0 ? " (Cu ref)" : ""),
               Table::num(sol.peak_rise_k, 3),
               Table::num(units::to_uA(amp), 4)});
  }
  t.print(std::cout);

  // --- SThM scan and k re-extraction. ------------------------------------
  line.thermal_conductivity = 5000.0;  // "unknown" ground truth
  line.substrate_coupling = 0.0;       // suspended line for metrology
  const auto sol = thermal::solve_self_heating(line, 20e-6, 401);
  thermal::SthmProbe probe;
  probe.spatial_resolution_m = 15e-9;
  probe.temperature_noise_k = 0.03;
  const auto scan = thermal::simulate_sthm_scan(sol, probe, rng);
  const double k_est =
      thermal::extract_thermal_conductivity(scan, line, 20e-6);
  std::cout << "\nSThM metrology: peak dT = "
            << Table::num(sol.peak_rise_k, 3) << " K, " << scan.x_m.size()
            << " scan pixels -> extracted k_th = " << Table::num(k_est, 4)
            << " W/mK (truth 5000)\n";
  return 0;
}
